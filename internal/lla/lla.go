// Package lla implements the Local Load Analyzer (paper §III-A): the agent
// collocated with every pub/sub server that gathers per-channel load metrics
// for every time unit and periodically ships an aggregate report to the load
// balancer.
//
// The LLA observes its broker through the broker's observer hook (the
// "subscribe to every channel" trick of the paper, without modifying the
// pub/sub server) and therefore sees every publication, subscription and
// unsubscription. For each time unit t (1 s) and channel it records the
// number of distinct publishers, publications, subscribers, messages sent
// (per-subscriber deliveries) and bytes in/out — exactly the metric set
// listed in the paper.
//
// The aggregation core (Accumulator) is pure state so the discrete-event
// simulator reuses it unchanged; Analyzer adds the live clock/ticker
// plumbing and report emission.
package lla

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// ChannelStats is one channel's load during one time unit.
type ChannelStats struct {
	Channel      string `json:"channel"`
	Publishers   int    `json:"publishers"`   // distinct publishers seen in the unit
	Publications int    `json:"publications"` // messages published on the channel
	Subscribers  int    `json:"subscribers"`  // subscriber count at unit end
	MessagesSent int    `json:"messagesSent"` // per-subscriber deliveries
	BytesIn      int64  `json:"bytesIn"`      // publication bytes received
	BytesOut     int64  `json:"bytesOut"`     // delivery bytes sent
}

// UnitStats is the complete per-channel breakdown of one time unit.
type UnitStats struct {
	// Unit is the index of the time unit since the analyzer started.
	Unit int64 `json:"unit"`
	// Channels holds stats for every channel active during the unit,
	// sorted by channel name for determinism.
	Channels []ChannelStats `json:"channels"`
}

// Report is the aggregate update message an LLA sends to the load balancer:
// all metrics for all time units since the previous report, plus the node's
// bandwidth envelope (§III-A, last paragraph).
type Report struct {
	Server string      `json:"server"`
	Seq    uint64      `json:"seq"`
	Units  []UnitStats `json:"units"`
	// MaxOutgoingBps is the theoretical maximum outgoing bandwidth T_i of
	// the node (bytes/second).
	MaxOutgoingBps float64 `json:"maxOutgoingBps"`
	// MeasuredOutgoingBps is the measured outgoing bandwidth on the
	// network interface, averaged over the report window (M_i).
	MeasuredOutgoingBps float64 `json:"measuredOutgoingBps"`
	// CPUUtilization estimates the node's CPU busy fraction over the
	// window (0..1+). The paper's future work (§VII) proposes integrating
	// CPU into the balancing decision for vCPU-constrained environments;
	// the LLA models it as per-delivery processing cost against the
	// node's delivery-rate capacity.
	CPUUtilization float64 `json:"cpuUtilization,omitempty"`
}

// Marshal encodes the report for the control plane.
func (r *Report) Marshal() ([]byte, error) { return json.Marshal(r) }

// UnmarshalReport decodes a control-plane report.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("lla: decode report: %w", err)
	}
	return &r, nil
}

// channelAccum accumulates one channel's stats inside the current unit.
type channelAccum struct {
	publishers   map[uint32]struct{}
	publications int
	messagesSent int
	bytesIn      int64
	bytesOut     int64
}

// Accumulator gathers per-channel metrics for the current time unit and
// seals units on demand. It is safe for concurrent use (the broker invokes
// observer callbacks from many goroutines).
type Accumulator struct {
	mu          sync.Mutex
	current     map[string]*channelAccum
	subscribers map[string]int // live subscriber counts (persist across units)
	unit        int64
}

// NewAccumulator creates an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		current:     make(map[string]*channelAccum),
		subscribers: make(map[string]int),
	}
}

func (a *Accumulator) channel(ch string) *channelAccum {
	c := a.current[ch]
	if c == nil {
		c = &channelAccum{publishers: make(map[uint32]struct{})}
		a.current[ch] = c
	}
	return c
}

// OnPublish records one publication. publisher is the originating node ID
// extracted from the envelope (0 if unknown), size the payload bytes,
// receivers the fan-out count.
func (a *Accumulator) OnPublish(ch string, publisher uint32, size, receivers int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.channel(ch)
	if publisher != 0 {
		c.publishers[publisher] = struct{}{}
	}
	c.publications++
	c.messagesSent += receivers
	c.bytesIn += int64(size)
	c.bytesOut += int64(size) * int64(receivers)
}

// OnSubscribe records a subscription; count is the channel's subscriber
// count after the operation (as reported by the broker).
func (a *Accumulator) OnSubscribe(ch string, count int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.subscribers[ch] = count
	a.channel(ch) // make the channel visible even before traffic flows
}

// OnUnsubscribe records an unsubscription.
func (a *Accumulator) OnUnsubscribe(ch string, count int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if count <= 0 {
		delete(a.subscribers, ch)
		return
	}
	a.subscribers[ch] = count
}

// Seal closes the current time unit and returns its stats. Channels with no
// activity and no subscribers are omitted.
func (a *Accumulator) Seal() UnitStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	u := UnitStats{Unit: a.unit}
	a.unit++
	names := make([]string, 0, len(a.current)+len(a.subscribers))
	seen := make(map[string]struct{}, len(a.current)+len(a.subscribers))
	for ch := range a.current {
		names = append(names, ch)
		seen[ch] = struct{}{}
	}
	for ch := range a.subscribers {
		if _, dup := seen[ch]; !dup {
			names = append(names, ch)
		}
	}
	sort.Strings(names)
	for _, ch := range names {
		c := a.current[ch]
		subs := a.subscribers[ch]
		if c == nil {
			if subs == 0 {
				continue
			}
			u.Channels = append(u.Channels, ChannelStats{Channel: ch, Subscribers: subs})
			continue
		}
		u.Channels = append(u.Channels, ChannelStats{
			Channel:      ch,
			Publishers:   len(c.publishers),
			Publications: c.publications,
			Subscribers:  subs,
			MessagesSent: c.messagesSent,
			BytesIn:      c.bytesIn,
			BytesOut:     c.bytesOut,
		})
	}
	a.current = make(map[string]*channelAccum)
	return u
}

// Subscribers returns the live subscriber count for a channel.
func (a *Accumulator) Subscribers(ch string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.subscribers[ch]
}

// Config configures an Analyzer.
type Config struct {
	// Server is the pub/sub server (node) this LLA monitors.
	Server string
	// MaxOutgoingBps is the node's theoretical max outgoing bandwidth T_i.
	MaxOutgoingBps float64
	// MaxDeliveriesPerSec is the node's CPU capacity expressed as
	// deliveries/second; 0 disables CPU reporting (the paper's §III-A
	// observation is that bandwidth saturates first, so this is an
	// opt-in extension).
	MaxDeliveriesPerSec float64
	// Unit is the metric time unit (default 1 s, as in the paper).
	Unit time.Duration
	// ReportEvery is the aggregate-update interval (default 3 units).
	ReportEvery time.Duration
	// Clock provides time (default: real clock).
	Clock clock.Clock
	// Logger receives structured LLA logs (one debug line per emitted
	// report). Nil discards.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Unit <= 0 {
		c.Unit = time.Second
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 3 * c.Unit
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.MaxOutgoingBps <= 0 {
		c.MaxOutgoingBps = 1.25e6 // DESIGN.md §4 calibration
	}
}

// Analyzer is the live LLA: a broker observer plus a ticking loop that seals
// time units and emits Reports.
type Analyzer struct {
	cfg   Config
	accum *Accumulator
	log   *slog.Logger

	mu         sync.Mutex
	pending    []UnitStats
	seq        uint64
	bytesOut   int64 // bytes sent during current report window
	deliveries int64 // per-subscriber deliveries during current window
	// windowStart stamps when the current report window opened so rates are
	// divided by the time that actually elapsed, not the configured
	// ReportEvery: a ticker firing late (CPU contention, coarse simulated
	// clocks) would otherwise overstate Bps and mask an overload.
	windowStart time.Time

	unitTicker   clock.Ticker
	reportTicker clock.Ticker

	reports chan *Report
	stop    chan struct{}
	done    chan struct{}
	started bool
}

var _ broker.Observer = (*Analyzer)(nil)

// NewAnalyzer creates an LLA for a node. Attach it with
// broker.AddObserver(analyzer), then Start it. The unit and report tickers
// are armed here, synchronously, so virtual-clock tests can advance time
// immediately after Start without racing ticker registration.
func NewAnalyzer(cfg Config) *Analyzer {
	cfg.fillDefaults()
	return &Analyzer{
		cfg:          cfg,
		accum:        NewAccumulator(),
		log:          trace.Component(cfg.Logger, "lla"),
		windowStart:  cfg.Clock.Now(),
		unitTicker:   cfg.Clock.NewTicker(cfg.Unit),
		reportTicker: cfg.Clock.NewTicker(cfg.ReportEvery),
		reports:      make(chan *Report, 16),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
}

// Reports returns the channel on which aggregate updates are delivered.
func (an *Analyzer) Reports() <-chan *Report { return an.reports }

// OnPublish implements broker.Observer. The publisher identity is recovered
// from the Dynamoth envelope when the payload is one.
func (an *Analyzer) OnPublish(ch string, payload []byte, receivers int) {
	var publisher uint32
	if env, err := message.Unmarshal(payload); err == nil {
		publisher = env.ID.Node
	}
	an.accum.OnPublish(ch, publisher, len(payload), receivers)
	an.mu.Lock()
	an.bytesOut += int64(len(payload)) * int64(receivers)
	an.deliveries += int64(receivers)
	an.mu.Unlock()
}

// OnSubscribe implements broker.Observer.
func (an *Analyzer) OnSubscribe(ch, _ string, subscribers int) {
	an.accum.OnSubscribe(ch, subscribers)
}

// OnUnsubscribe implements broker.Observer.
func (an *Analyzer) OnUnsubscribe(ch, _ string, subscribers int) {
	an.accum.OnUnsubscribe(ch, subscribers)
}

// Start launches the unit/report loop. Call Stop to terminate it.
func (an *Analyzer) Start() {
	an.mu.Lock()
	already := an.started
	an.started = true
	an.mu.Unlock()
	if already {
		return
	}
	go an.run()
}

// Stop terminates the loop and closes the report channel.
func (an *Analyzer) Stop() {
	select {
	case <-an.stop:
		// already stopped
	default:
		close(an.stop)
	}
	an.mu.Lock()
	started := an.started
	an.mu.Unlock()
	if started {
		<-an.done
	} else {
		an.unitTicker.Stop()
		an.reportTicker.Stop()
	}
}

func (an *Analyzer) run() {
	defer close(an.done)
	defer close(an.reports)
	defer an.unitTicker.Stop()
	defer an.reportTicker.Stop()
	for {
		select {
		case <-an.unitTicker.C():
			u := an.accum.Seal()
			an.mu.Lock()
			an.pending = append(an.pending, u)
			an.mu.Unlock()
		case <-an.reportTicker.C():
			r := an.buildReport()
			select {
			case an.reports <- r:
			default:
				// Receiver lagging: drop rather than block the loop; the
				// next report supersedes this one anyway.
			}
		case <-an.stop:
			return
		}
	}
}

// buildReport drains pending units into a Report. Rates are computed over
// the wall-clock (or virtual-clock) time since the previous report, not the
// configured interval, so a late-firing ticker cannot inflate them.
func (an *Analyzer) buildReport() *Report {
	now := an.cfg.Clock.Now()
	an.mu.Lock()
	units := an.pending
	an.pending = nil
	bytes := an.bytesOut
	an.bytesOut = 0
	deliveries := an.deliveries
	an.deliveries = 0
	an.seq++
	seq := an.seq
	window := now.Sub(an.windowStart).Seconds()
	an.windowStart = now
	an.mu.Unlock()
	if window <= 0 {
		window = an.cfg.ReportEvery.Seconds()
	}
	r := &Report{
		Server:              an.cfg.Server,
		Seq:                 seq,
		Units:               units,
		MaxOutgoingBps:      an.cfg.MaxOutgoingBps,
		MeasuredOutgoingBps: float64(bytes) / window,
	}
	if an.cfg.MaxDeliveriesPerSec > 0 {
		r.CPUUtilization = float64(deliveries) / window / an.cfg.MaxDeliveriesPerSec
	}
	an.log.Debug("load report",
		slog.String("server", an.cfg.Server),
		slog.Uint64("seq", seq),
		slog.Int("units", len(units)),
		slog.Float64("measuredBps", r.MeasuredOutgoingBps),
		slog.Float64("maxBps", r.MaxOutgoingBps))
	return r
}
