package lla

import (
	"sort"
	"sync"
	"time"
)

// DetectorConfig tunes the failure detector.
type DetectorConfig struct {
	// StaleAfter declares a server suspect when no LLA report arrived for
	// this long (default 10 s — a few report intervals). Healthy LLAs
	// report unconditionally every ReportEvery, even when idle, so report
	// silence is a strong signal.
	StaleAfter time.Duration
	// ProbeMisses is K: the number of consecutive failed liveness probes
	// that declares a server dead (default 3).
	ProbeMisses int
}

func (c *DetectorConfig) fillDefaults() {
	if c.StaleAfter <= 0 {
		c.StaleAfter = 10 * time.Second
	}
	if c.ProbeMisses <= 0 {
		c.ProbeMisses = 3
	}
}

// serverHealth is one server's liveness evidence.
type serverHealth struct {
	lastReport time.Time // last LLA report (initialized to track time)
	misses     int       // consecutive failed probes
	dead       bool      // already declared; sticky until Forget
}

// Detector is the load-balancer-side failure detector: it fuses two
// independent liveness signals — LLA report freshness (the data-plane proof
// that the node's whole stack is alive) and direct probes (the dispatcher's
// RESP PINGs, which survive an idle or wedged LLA) — and declares a server
// dead when either K consecutive probes miss or reports go stale past the
// threshold.
//
// Declarations are sticky: once dead, a server stays dead until Forget (the
// repair path removes it from the plan, so there is nothing to resurrect —
// a replacement is a new server). Detector is safe for concurrent use.
type Detector struct {
	cfg DetectorConfig

	mu      sync.Mutex
	servers map[string]*serverHealth
}

// NewDetector creates a detector.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg.fillDefaults()
	return &Detector{cfg: cfg, servers: make(map[string]*serverHealth)}
}

// Track registers a server if unknown, starting its staleness grace window
// at now. Call it for every server in the current plan before reading
// verdicts, so freshly joined servers are not instantly stale.
func (d *Detector) Track(server string, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.servers[server]; !ok {
		d.servers[server] = &serverHealth{lastReport: now}
	}
}

// ObserveReport records that an LLA report from server arrived at now.
func (d *Detector) ObserveReport(server string, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.servers[server]
	if h == nil {
		h = &serverHealth{}
		d.servers[server] = h
	}
	if now.After(h.lastReport) {
		h.lastReport = now
	}
}

// ObserveProbe records one liveness probe outcome. Probe successes reset the
// consecutive-miss counter but deliberately do not refresh report freshness:
// a reachable node whose reporting stack died is still faulty.
func (d *Detector) ObserveProbe(server string, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.servers[server]
	if h == nil {
		return // only probe tracked servers
	}
	if ok {
		h.misses = 0
	} else {
		h.misses++
	}
}

// Misses returns the server's consecutive failed-probe count.
func (d *Detector) Misses(server string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h := d.servers[server]; h != nil {
		return h.misses
	}
	return 0
}

// Dead evaluates every tracked server at now and returns those considered
// dead, sorted deterministically by the map's insertion-independent order
// (callers treat it as a set).
func (d *Detector) Dead(now time.Time) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for name, h := range d.servers {
		if !h.dead {
			if h.misses >= d.cfg.ProbeMisses || now.Sub(h.lastReport) > d.cfg.StaleAfter {
				h.dead = true
			}
		}
		if h.dead {
			out = append(out, name)
		}
	}
	return out
}

// ServerStatus is one server's liveness evidence, exported for status pages.
type ServerStatus struct {
	Server     string    `json:"server"`
	LastReport time.Time `json:"lastReport"`
	Misses     int       `json:"probeMisses"`
	Dead       bool      `json:"dead"`
}

// Status snapshots every tracked server's verdict evidence, sorted by name.
// Unlike Dead it does not evaluate thresholds or mutate verdicts — it only
// reports what the detector currently believes.
func (d *Detector) Status() []ServerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ServerStatus, 0, len(d.servers))
	for name, h := range d.servers {
		out = append(out, ServerStatus{
			Server:     name,
			LastReport: h.lastReport,
			Misses:     h.misses,
			Dead:       h.dead,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Server < out[j].Server })
	return out
}

// Forget drops a server from the detector (after evacuation, or a graceful
// release).
func (d *Detector) Forget(server string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.servers, server)
}
