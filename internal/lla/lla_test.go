package lla

import (
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/message"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestAccumulatorSingleUnit(t *testing.T) {
	a := NewAccumulator()
	a.OnSubscribe("tile", 1)
	a.OnSubscribe("tile", 2)
	a.OnPublish("tile", 7, 100, 2)
	a.OnPublish("tile", 7, 100, 2)
	a.OnPublish("tile", 9, 50, 2)

	u := a.Seal()
	if u.Unit != 0 {
		t.Fatalf("unit index=%d", u.Unit)
	}
	if len(u.Channels) != 1 {
		t.Fatalf("channels=%d", len(u.Channels))
	}
	c := u.Channels[0]
	if c.Channel != "tile" {
		t.Fatalf("channel=%q", c.Channel)
	}
	if c.Publishers != 2 {
		t.Fatalf("publishers=%d, want 2 distinct", c.Publishers)
	}
	if c.Publications != 3 {
		t.Fatalf("publications=%d", c.Publications)
	}
	if c.Subscribers != 2 {
		t.Fatalf("subscribers=%d", c.Subscribers)
	}
	if c.MessagesSent != 6 {
		t.Fatalf("messagesSent=%d", c.MessagesSent)
	}
	if c.BytesIn != 250 {
		t.Fatalf("bytesIn=%d", c.BytesIn)
	}
	if c.BytesOut != 500 {
		t.Fatalf("bytesOut=%d", c.BytesOut)
	}
}

func TestAccumulatorUnitsResetButSubscribersPersist(t *testing.T) {
	a := NewAccumulator()
	a.OnSubscribe("c", 5)
	a.OnPublish("c", 1, 10, 5)
	a.Seal()

	u := a.Seal() // second unit: no traffic, but 5 subscribers remain
	if u.Unit != 1 {
		t.Fatalf("unit=%d", u.Unit)
	}
	if len(u.Channels) != 1 {
		t.Fatalf("channels=%+v", u.Channels)
	}
	c := u.Channels[0]
	if c.Publications != 0 || c.Publishers != 0 || c.BytesOut != 0 {
		t.Fatalf("traffic not reset: %+v", c)
	}
	if c.Subscribers != 5 {
		t.Fatalf("subscribers lost across units: %d", c.Subscribers)
	}
}

func TestAccumulatorUnsubscribeToZeroDropsChannel(t *testing.T) {
	a := NewAccumulator()
	a.OnSubscribe("c", 1)
	a.OnUnsubscribe("c", 0)
	a.Seal() // flush the unit in which activity happened
	u := a.Seal()
	if len(u.Channels) != 0 {
		t.Fatalf("dead channel still reported: %+v", u.Channels)
	}
	if a.Subscribers("c") != 0 {
		t.Fatal("subscriber count not cleared")
	}
}

func TestAccumulatorUnknownPublisherNotCounted(t *testing.T) {
	a := NewAccumulator()
	a.OnPublish("c", 0, 10, 1)
	u := a.Seal()
	if u.Channels[0].Publishers != 0 {
		t.Fatalf("unknown publisher counted: %+v", u.Channels[0])
	}
	if u.Channels[0].Publications != 1 {
		t.Fatal("publication missing")
	}
}

func TestAccumulatorChannelsSorted(t *testing.T) {
	a := NewAccumulator()
	for _, ch := range []string{"zeta", "alpha", "mid"} {
		a.OnPublish(ch, 1, 1, 0)
	}
	u := a.Seal()
	if len(u.Channels) != 3 ||
		u.Channels[0].Channel != "alpha" ||
		u.Channels[1].Channel != "mid" ||
		u.Channels[2].Channel != "zeta" {
		t.Fatalf("channels not sorted: %+v", u.Channels)
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	r := &Report{
		Server: "pub1",
		Seq:    3,
		Units: []UnitStats{{
			Unit: 9,
			Channels: []ChannelStats{{
				Channel: "c", Publishers: 1, Publications: 2,
				Subscribers: 3, MessagesSent: 6, BytesIn: 200, BytesOut: 600,
			}},
		}},
		MaxOutgoingBps:      1.25e6,
		MeasuredOutgoingBps: 4.2e5,
	}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Server != "pub1" || got.Seq != 3 || len(got.Units) != 1 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Units[0].Channels[0].BytesOut != 600 {
		t.Fatalf("channel stats lost: %+v", got.Units[0].Channels[0])
	}
	if _, err := UnmarshalReport([]byte("{")); err == nil {
		t.Fatal("bad JSON decoded")
	}
}

func TestAnalyzerEndToEndWithManualClock(t *testing.T) {
	clk := clock.NewManual(epoch)
	an := NewAnalyzer(Config{
		Server:         "pub1",
		MaxOutgoingBps: 1000,
		Unit:           time.Second,
		ReportEvery:    3 * time.Second,
		Clock:          clk,
	})
	an.Start()
	defer an.Stop()

	// Simulate broker events: an envelope-wrapped publication so the
	// publisher identity is recovered.
	env := &message.Envelope{Type: message.TypeData, ID: message.ID{Node: 42, Seq: 1}, Channel: "c", Payload: []byte("xy")}
	payload := env.Marshal()
	an.OnSubscribe("c", "client-1", 1)
	an.OnPublish("c", payload, 1)

	// Tick three units; the report fires on the third.
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		time.Sleep(5 * time.Millisecond) // let the loop observe the tick
	}

	select {
	case r := <-an.Reports():
		if r.Server != "pub1" || r.Seq != 1 {
			t.Fatalf("report header %+v", r)
		}
		if r.MaxOutgoingBps != 1000 {
			t.Fatalf("maxBps=%f", r.MaxOutgoingBps)
		}
		wantMeasured := float64(len(payload)) / 3.0
		if diff := r.MeasuredOutgoingBps - wantMeasured; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("measuredBps=%f want %f", r.MeasuredOutgoingBps, wantMeasured)
		}
		if len(r.Units) == 0 {
			t.Fatal("report carries no units")
		}
		c := r.Units[0].Channels[0]
		if c.Publishers != 1 || c.Publications != 1 || c.Subscribers != 1 {
			t.Fatalf("unit stats %+v", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no report emitted")
	}
}

func TestAnalyzerIsBrokerObserver(t *testing.T) {
	// Wire a real broker to the analyzer and verify counts flow through.
	clk := clock.NewManual(epoch)
	an := NewAnalyzer(Config{Server: "pub1", Clock: clk})
	b := broker.New(broker.Options{})
	defer b.Close()
	b.AddObserver(an)

	sink := make(sinkChan, 8)
	s, err := b.Connect("c1", sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe("game"); err != nil {
		t.Fatal(err)
	}
	b.Publish("game", []byte("hello"))
	<-sink

	u := an.accum.Seal()
	if len(u.Channels) != 1 || u.Channels[0].Publications != 1 || u.Channels[0].Subscribers != 1 {
		t.Fatalf("unit from live broker: %+v", u.Channels)
	}
}

type sinkChan chan struct{}

func (s sinkChan) Deliver(string, []byte) { s <- struct{}{} }
func (s sinkChan) Closed(error)           {}

func TestAnalyzerStopIdempotent(t *testing.T) {
	an := NewAnalyzer(Config{Server: "x"})
	an.Start()
	an.Stop()
	an.Stop()
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.Unit != time.Second || c.ReportEvery != 3*time.Second {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Clock == nil || c.MaxOutgoingBps <= 0 {
		t.Fatal("defaults missing")
	}
}
