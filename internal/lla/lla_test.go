package lla

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/message"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestAccumulatorSingleUnit(t *testing.T) {
	a := NewAccumulator()
	a.OnSubscribe("tile", 1)
	a.OnSubscribe("tile", 2)
	a.OnPublish("tile", 7, 100, 2)
	a.OnPublish("tile", 7, 100, 2)
	a.OnPublish("tile", 9, 50, 2)

	u := a.Seal()
	if u.Unit != 0 {
		t.Fatalf("unit index=%d", u.Unit)
	}
	if len(u.Channels) != 1 {
		t.Fatalf("channels=%d", len(u.Channels))
	}
	c := u.Channels[0]
	if c.Channel != "tile" {
		t.Fatalf("channel=%q", c.Channel)
	}
	if c.Publishers != 2 {
		t.Fatalf("publishers=%d, want 2 distinct", c.Publishers)
	}
	if c.Publications != 3 {
		t.Fatalf("publications=%d", c.Publications)
	}
	if c.Subscribers != 2 {
		t.Fatalf("subscribers=%d", c.Subscribers)
	}
	if c.MessagesSent != 6 {
		t.Fatalf("messagesSent=%d", c.MessagesSent)
	}
	if c.BytesIn != 250 {
		t.Fatalf("bytesIn=%d", c.BytesIn)
	}
	if c.BytesOut != 500 {
		t.Fatalf("bytesOut=%d", c.BytesOut)
	}
}

func TestAccumulatorUnitsResetButSubscribersPersist(t *testing.T) {
	a := NewAccumulator()
	a.OnSubscribe("c", 5)
	a.OnPublish("c", 1, 10, 5)
	a.Seal()

	u := a.Seal() // second unit: no traffic, but 5 subscribers remain
	if u.Unit != 1 {
		t.Fatalf("unit=%d", u.Unit)
	}
	if len(u.Channels) != 1 {
		t.Fatalf("channels=%+v", u.Channels)
	}
	c := u.Channels[0]
	if c.Publications != 0 || c.Publishers != 0 || c.BytesOut != 0 {
		t.Fatalf("traffic not reset: %+v", c)
	}
	if c.Subscribers != 5 {
		t.Fatalf("subscribers lost across units: %d", c.Subscribers)
	}
}

func TestAccumulatorUnsubscribeToZeroDropsChannel(t *testing.T) {
	a := NewAccumulator()
	a.OnSubscribe("c", 1)
	a.OnUnsubscribe("c", 0)
	a.Seal() // flush the unit in which activity happened
	u := a.Seal()
	if len(u.Channels) != 0 {
		t.Fatalf("dead channel still reported: %+v", u.Channels)
	}
	if a.Subscribers("c") != 0 {
		t.Fatal("subscriber count not cleared")
	}
}

func TestAccumulatorUnknownPublisherNotCounted(t *testing.T) {
	a := NewAccumulator()
	a.OnPublish("c", 0, 10, 1)
	u := a.Seal()
	if u.Channels[0].Publishers != 0 {
		t.Fatalf("unknown publisher counted: %+v", u.Channels[0])
	}
	if u.Channels[0].Publications != 1 {
		t.Fatal("publication missing")
	}
}

func TestAccumulatorChannelsSorted(t *testing.T) {
	a := NewAccumulator()
	for _, ch := range []string{"zeta", "alpha", "mid"} {
		a.OnPublish(ch, 1, 1, 0)
	}
	u := a.Seal()
	if len(u.Channels) != 3 ||
		u.Channels[0].Channel != "alpha" ||
		u.Channels[1].Channel != "mid" ||
		u.Channels[2].Channel != "zeta" {
		t.Fatalf("channels not sorted: %+v", u.Channels)
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	r := &Report{
		Server: "pub1",
		Seq:    3,
		Units: []UnitStats{{
			Unit: 9,
			Channels: []ChannelStats{{
				Channel: "c", Publishers: 1, Publications: 2,
				Subscribers: 3, MessagesSent: 6, BytesIn: 200, BytesOut: 600,
			}},
		}},
		MaxOutgoingBps:      1.25e6,
		MeasuredOutgoingBps: 4.2e5,
	}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Server != "pub1" || got.Seq != 3 || len(got.Units) != 1 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Units[0].Channels[0].BytesOut != 600 {
		t.Fatalf("channel stats lost: %+v", got.Units[0].Channels[0])
	}
	if _, err := UnmarshalReport([]byte("{")); err == nil {
		t.Fatal("bad JSON decoded")
	}
}

func TestAnalyzerEndToEndWithManualClock(t *testing.T) {
	clk := clock.NewManual(epoch)
	an := NewAnalyzer(Config{
		Server:         "pub1",
		MaxOutgoingBps: 1000,
		Unit:           time.Second,
		ReportEvery:    3 * time.Second,
		Clock:          clk,
	})
	an.Start()
	defer an.Stop()

	// Simulate broker events: an envelope-wrapped publication so the
	// publisher identity is recovered.
	env := &message.Envelope{Type: message.TypeData, ID: message.ID{Node: 42, Seq: 1}, Channel: "c", Payload: []byte("xy")}
	payload := env.Marshal()
	an.OnSubscribe("c", "client-1", 1)
	an.OnPublish("c", payload, 1)

	// Tick three units; the report fires on the third.
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		time.Sleep(5 * time.Millisecond) // let the loop observe the tick
	}

	select {
	case r := <-an.Reports():
		if r.Server != "pub1" || r.Seq != 1 {
			t.Fatalf("report header %+v", r)
		}
		if r.MaxOutgoingBps != 1000 {
			t.Fatalf("maxBps=%f", r.MaxOutgoingBps)
		}
		wantMeasured := float64(len(payload)) / 3.0
		if diff := r.MeasuredOutgoingBps - wantMeasured; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("measuredBps=%f want %f", r.MeasuredOutgoingBps, wantMeasured)
		}
		if len(r.Units) == 0 {
			t.Fatal("report carries no units")
		}
		c := r.Units[0].Channels[0]
		if c.Publishers != 1 || c.Publications != 1 || c.Subscribers != 1 {
			t.Fatalf("unit stats %+v", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no report emitted")
	}
}

func TestAnalyzerIsBrokerObserver(t *testing.T) {
	// Wire a real broker to the analyzer and verify counts flow through.
	clk := clock.NewManual(epoch)
	an := NewAnalyzer(Config{Server: "pub1", Clock: clk})
	b := broker.New(broker.Options{})
	defer b.Close()
	b.AddObserver(an)

	sink := make(sinkChan, 8)
	s, err := b.Connect("c1", sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe("game"); err != nil {
		t.Fatal(err)
	}
	b.Publish("game", []byte("hello"))
	<-sink

	u := an.accum.Seal()
	if len(u.Channels) != 1 || u.Channels[0].Publications != 1 || u.Channels[0].Subscribers != 1 {
		t.Fatalf("unit from live broker: %+v", u.Channels)
	}
}

type sinkChan chan struct{}

func (s sinkChan) Deliver(string, []byte) { s <- struct{}{} }
func (s sinkChan) Closed(error)           {}

func TestAnalyzerStopIdempotent(t *testing.T) {
	an := NewAnalyzer(Config{Server: "x"})
	an.Start()
	an.Stop()
	an.Stop()
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.Unit != time.Second || c.ReportEvery != 3*time.Second {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Clock == nil || c.MaxOutgoingBps <= 0 {
		t.Fatal("defaults missing")
	}
	if c.ChannelCap != DefaultChannelCap {
		t.Fatalf("channelCap default=%d", c.ChannelCap)
	}
	c = Config{ChannelCap: -1}
	c.fillDefaults()
	if c.ChannelCap != 0 {
		t.Fatalf("negative cap not mapped to unbounded: %d", c.ChannelCap)
	}
}

func TestAccumulatorChannelCapFoldsIntoOverflow(t *testing.T) {
	// Cap of AccumStripes gives each stripe exactly one channel slot, so the
	// tracked-channel count is bounded regardless of how many distinct
	// channels publish.
	a := NewAccumulatorWithCap(AccumStripes)
	for i := 0; i < 10_000; i++ {
		a.OnPublish(fmt.Sprintf("dev-%d", i), 1, 10, 2)
	}
	if st := a.UnitCacheStats(); st.Size > AccumStripes {
		t.Fatalf("tracked channels=%d exceed cap %d", st.Size, AccumStripes)
	}
	u := a.Seal()
	if len(u.Channels) > AccumStripes {
		t.Fatalf("sealed channels=%d exceed cap", len(u.Channels))
	}
	if u.Overflow == nil {
		t.Fatal("overflow bucket missing")
	}
	// Conservation: tracked + overflow must account for every publication.
	total := u.Overflow.Publications
	var bytesIn int64 = u.Overflow.BytesIn
	for _, c := range u.Channels {
		total += c.Publications
		bytesIn += c.BytesIn
	}
	if total != 10_000 || bytesIn != 100_000 {
		t.Fatalf("publications=%d bytesIn=%d: overflow lost traffic", total, bytesIn)
	}
	// Next unit starts empty: channels that fit again are tracked again.
	u2 := a.Seal()
	if u2.Overflow != nil {
		t.Fatalf("overflow leaked across units: %+v", u2.Overflow)
	}
}

func TestAccumulatorSubscriberMapBounded(t *testing.T) {
	a := NewAccumulatorWithCap(AccumStripes) // one subscriber slot per stripe
	for i := 0; i < 5_000; i++ {
		a.OnSubscribe(fmt.Sprintf("dev-%d", i), 1)
	}
	st := a.SubscriberCacheStats()
	if st.Size > AccumStripes {
		t.Fatalf("subscriber map size=%d exceeds cap", st.Size)
	}
	if st.Evictions == 0 {
		t.Fatal("no displacement recorded despite cap pressure")
	}
	// Displaced channels self-heal on their next subscription event.
	a.OnSubscribe("dev-0", 3)
	if a.Subscribers("dev-0") != 3 {
		t.Fatal("re-reported channel not tracked")
	}
}

func TestAccumulatorOverflowRoundTripsJSON(t *testing.T) {
	r := &Report{Units: []UnitStats{{
		Overflow: &ChannelStats{Channel: "+overflow", Publications: 7, BytesIn: 70},
	}}}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Units[0].Overflow == nil || got.Units[0].Overflow.Publications != 7 {
		t.Fatalf("overflow lost in transit: %+v", got.Units[0])
	}
}

func TestAccumulatorConcurrentObserversRace(t *testing.T) {
	a := NewAccumulatorWithCap(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2_000; i++ {
				ch := fmt.Sprintf("ch-%d", (g*31+i)%512)
				switch i % 4 {
				case 0:
					a.OnSubscribe(ch, i%8+1)
				case 3:
					a.OnUnsubscribe(ch, i%2)
				default:
					a.OnPublish(ch, uint32(g+1), 64, 3)
				}
			}
		}(g)
	}
	sealed := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			u := a.Seal()
			_ = u
			if sealed == 0 {
				t.Log("no mid-run seal happened") // timing-dependent, not fatal
			}
			return
		default:
			a.Seal()
			sealed++
			time.Sleep(time.Millisecond)
		}
	}
}

// BenchmarkAccumulatorParallel measures the striped OnPublish path under
// parallel observers (the broker fan-out shape that serialized on the seed's
// single Accumulator.mu). Run with -cpu 8 to exercise 8 goroutines.
func BenchmarkAccumulatorParallel(b *testing.B) {
	a := NewAccumulator()
	channels := make([]string, 1024)
	for i := range channels {
		channels[i] = fmt.Sprintf("game-tile-%d", i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a.OnPublish(channels[i&1023], 7, 128, 4)
			i++
		}
	})
}

// BenchmarkAccumulatorSerialBaseline is the same workload single-goroutine,
// for comparing per-op cost against the parallel path.
func BenchmarkAccumulatorSerialBaseline(b *testing.B) {
	a := NewAccumulator()
	channels := make([]string, 1024)
	for i := range channels {
		channels[i] = fmt.Sprintf("game-tile-%d", i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.OnPublish(channels[i&1023], 7, 128, 4)
	}
}
