package lla

import (
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
)

// TestBuildReportUsesElapsedTimeNotInterval is the regression test for the
// late-ticker measurement bug: a report built after 2× the configured
// interval must divide the byte count by the time that actually elapsed.
// Dividing by ReportEvery would double the measured Bps and make the
// balancer see phantom overload.
func TestBuildReportUsesElapsedTimeNotInterval(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	an := NewAnalyzer(Config{
		Server:         "pub1",
		MaxOutgoingBps: 1e6,
		Unit:           time.Second,
		ReportEvery:    3 * time.Second,
		Clock:          clk,
	})
	defer an.Stop()

	// 600 bytes × 10 receivers = 6000 bytes out in the window.
	an.OnPublish("game", make([]byte, 600), 10)

	// The ticker fires late: 6 s elapse instead of the configured 3 s.
	clk.Advance(6 * time.Second)
	r := an.buildReport()
	want := 6000.0 / 6.0
	if r.MeasuredOutgoingBps != want {
		t.Fatalf("MeasuredOutgoingBps = %v, want %v (bytes/elapsed, not bytes/ReportEvery)",
			r.MeasuredOutgoingBps, want)
	}

	// The next window starts at this report: another 6000 bytes over the
	// nominal 3 s must yield the full rate, unaffected by the late first
	// report.
	an.OnPublish("game", make([]byte, 600), 10)
	clk.Advance(3 * time.Second)
	r = an.buildReport()
	if want := 6000.0 / 3.0; r.MeasuredOutgoingBps != want {
		t.Fatalf("second window Bps = %v, want %v", r.MeasuredOutgoingBps, want)
	}
}

// TestBuildReportZeroElapsedFallsBack covers the degenerate case of two
// reports at the same instant (possible with a manual clock): the rate
// divides by the configured interval instead of zero.
func TestBuildReportZeroElapsedFallsBack(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	an := NewAnalyzer(Config{
		Server:      "pub1",
		Unit:        time.Second,
		ReportEvery: 3 * time.Second,
		Clock:       clk,
	})
	defer an.Stop()
	an.OnPublish("game", make([]byte, 300), 1)
	r := an.buildReport()
	if want := 300.0 / 3.0; r.MeasuredOutgoingBps != want {
		t.Fatalf("zero-elapsed Bps = %v, want %v (ReportEvery fallback)", r.MeasuredOutgoingBps, want)
	}
}

// TestBuildReportCPUWindow checks the CPU estimate uses the same elapsed
// window as the bandwidth measurement.
func TestBuildReportCPUWindow(t *testing.T) {
	clk := clock.NewManual(time.Unix(1000, 0))
	an := NewAnalyzer(Config{
		Server:              "pub1",
		MaxDeliveriesPerSec: 100,
		Unit:                time.Second,
		ReportEvery:         3 * time.Second,
		Clock:               clk,
	})
	defer an.Stop()
	an.OnPublish("game", make([]byte, 10), 300) // 300 deliveries
	clk.Advance(6 * time.Second)                // late window again
	r := an.buildReport()
	if want := 300.0 / 6.0 / 100.0; r.CPUUtilization != want {
		t.Fatalf("CPUUtilization = %v, want %v", r.CPUUtilization, want)
	}
}
