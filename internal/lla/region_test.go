package lla

import (
	"fmt"
	"testing"
	"time"
)

func TestRegionTrackerDrainWindows(t *testing.T) {
	rt := newRegionTracker(0, nil)
	for i := 0; i < 100; i++ {
		rt.Observe("eu", 30*time.Millisecond)
	}
	rt.Observe("us", 5*time.Millisecond)

	stats := rt.Drain()
	if len(stats) != 2 {
		t.Fatalf("Drain returned %d regions, want 2: %+v", len(stats), stats)
	}
	if stats[0].Region != "eu" || stats[1].Region != "us" {
		t.Fatalf("regions not sorted: %+v", stats)
	}
	eu := stats[0]
	if eu.Count != 100 {
		t.Fatalf("eu count = %d, want 100", eu.Count)
	}
	// 30ms lands in the (16.4ms, 32.8ms] bucket.
	if eu.P99Ms < 30 || eu.P99Ms > 66 {
		t.Fatalf("eu p99 = %vms, want ~32.8ms bucket bound", eu.P99Ms)
	}
	if eu.MaxMs < 29 || eu.MaxMs > 31 {
		t.Fatalf("eu max = %vms, want ~30ms", eu.MaxMs)
	}
	if eu.SumMs < 2990 || eu.SumMs > 3010 {
		t.Fatalf("eu sum = %vms, want ~3000ms", eu.SumMs)
	}

	// The next window only contains what happened since the last drain.
	rt.Observe("eu", time.Millisecond)
	stats = rt.Drain()
	if len(stats) != 1 || stats[0].Region != "eu" || stats[0].Count != 1 {
		t.Fatalf("second window = %+v, want [eu count=1]", stats)
	}

	// Snapshot stays cumulative and non-destructive.
	snap := rt.Snapshot()
	if len(snap) != 2 || snap[0].Count != 101 {
		t.Fatalf("snapshot = %+v, want cumulative eu count 101", snap)
	}
}

func TestRegionTrackerWANDelayModel(t *testing.T) {
	rt := newRegionTracker(0, func(region string) time.Duration {
		if region == "ap" {
			return 120 * time.Millisecond
		}
		return 0
	})
	rt.Observe("ap", time.Millisecond)
	stats := rt.Drain()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].MaxMs < 120 {
		t.Fatalf("ap max = %vms, want >= 120ms (WAN model applied)", stats[0].MaxMs)
	}
}

func TestRegionTrackerCapOverflow(t *testing.T) {
	rt := newRegionTracker(2, nil)
	rt.Observe("r0", time.Millisecond)
	rt.Observe("r1", time.Millisecond)
	rt.Observe("r2", time.Millisecond) // beyond cap: folds into overflow
	rt.Observe("r3", time.Millisecond)
	stats := rt.Drain()
	var overflow *RegionStats
	for i := range stats {
		if stats[i].Region == RegionOverflow {
			overflow = &stats[i]
		}
	}
	if overflow == nil || overflow.Count != 2 {
		t.Fatalf("overflow = %+v, want count 2 (stats %+v)", overflow, stats)
	}
}

func TestReportRegionsRoundTrip(t *testing.T) {
	rt := newRegionTracker(0, nil)
	for i := 0; i < 10; i++ {
		rt.Observe("eu", 20*time.Millisecond)
	}
	r := &Report{Server: "pub1", Seq: 1, Regions: rt.Drain()}
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalReport(data)
	if err != nil {
		t.Fatalf("UnmarshalReport: %v", err)
	}
	if len(got.Regions) != 1 || got.Regions[0].Region != "eu" || got.Regions[0].Count != 10 {
		t.Fatalf("regions did not survive the report path: %+v", got.Regions)
	}
	if len(got.Regions[0].Buckets) != RegionBuckets {
		t.Fatalf("buckets did not survive: %d", len(got.Regions[0].Buckets))
	}
}

func TestMergeRegionStats(t *testing.T) {
	rt := newRegionTracker(0, nil)
	for i := 0; i < 99; i++ {
		rt.Observe("eu", time.Millisecond)
	}
	a := rt.Drain()[0]
	rt2 := newRegionTracker(0, nil)
	for i := 0; i < 99; i++ {
		rt2.Observe("eu", 500*time.Millisecond)
	}
	b := rt2.Drain()[0]

	m := MergeRegionStats(a, b)
	if m.Count != 198 {
		t.Fatalf("merged count = %d, want 198", m.Count)
	}
	// Half the merged observations are ~500ms, so the merged p99 must come
	// from the slow side's bucket.
	if m.P99Ms < 500 {
		t.Fatalf("merged p99 = %vms, want >= 500ms", m.P99Ms)
	}
	if m.MaxMs < b.MaxMs {
		t.Fatalf("merged max = %v, want >= %v", m.MaxMs, b.MaxMs)
	}
}

func TestRegionObserveParallel(t *testing.T) {
	rt := newRegionTracker(0, nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			region := fmt.Sprintf("r%d", g%4)
			for i := 0; i < 1000; i++ {
				rt.Observe(region, time.Millisecond)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	var total uint64
	for _, s := range rt.Drain() {
		total += s.Count
	}
	if total != 8000 {
		t.Fatalf("total observations = %d, want 8000", total)
	}
}
