package lla

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// RegionBuckets is the per-region delivery-latency histogram resolution:
// power-of-two microsecond buckets, bucket i covering (2^i, 2^(i+1)] µs —
// the same compact scheme the node's per-channel latency tracker uses, so
// one bucket index means the same latency range everywhere. 28 buckets span
// 1µs to ~4.5 minutes.
const RegionBuckets = 28

// DefaultRegionCap bounds the distinct subscriber regions a tracker holds.
// Deployments have few regions (the King dataset clusters into continents);
// the cap only guards against a client declaring garbage regions. Beyond it,
// observations fold into the RegionOverflow pseudo-region.
const DefaultRegionCap = 64

// RegionOverflow is the pseudo-region that absorbs observations once the
// region cap is reached, so the load is visible even when unattributable.
const RegionOverflow = "+overflow"

// RegionStats is one subscriber region's delivery-latency digest over a
// report window: a compact histogram plus count/sum/max so the balancer can
// merge windows from many servers without losing tail shape.
type RegionStats struct {
	Region string `json:"region"`
	Count  uint64 `json:"count"`
	// SumMs/MaxMs/P99Ms are milliseconds; P99 is the upper bound of the
	// bucket holding the window's 99th-percentile observation.
	SumMs float64 `json:"sumMs"`
	MaxMs float64 `json:"maxMs"`
	P99Ms float64 `json:"p99Ms"`
	// Buckets are the window's observation counts per power-of-two
	// microsecond bucket (see RegionBuckets).
	Buckets []uint64 `json:"buckets,omitempty"`
}

// regionBucket maps a latency to its power-of-two bucket index.
func regionBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= RegionBuckets {
		b = RegionBuckets - 1
	}
	return b
}

// RegionBucketUpperMs is bucket i's upper bound in milliseconds.
func RegionBucketUpperMs(i int) float64 {
	return float64(uint64(1)<<uint(i+1)) / 1e3
}

// regionHist is one region's accumulation. Counters are cumulative atomics
// (Observe runs on the broker's fan-out path); prev holds the values already
// shipped in earlier reports and is only touched under the tracker's drain
// lock.
type regionHist struct {
	counts [RegionBuckets]atomic.Uint64
	sumUs  atomic.Int64
	maxUs  atomic.Int64 // cumulative max; reset on drain

	prev      [RegionBuckets]uint64
	prevSumUs int64
}

func (h *regionHist) observe(d time.Duration) {
	h.counts[regionBucket(d)].Add(1)
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.sumUs.Add(us)
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// regionTracker accumulates per-subscriber-region delivery latencies. The
// observe path is lock-free after a region's first observation (one RLock'd
// map hit plus atomic adds); draining a report window happens under drainMu.
type regionTracker struct {
	cap   int
	delay func(region string) time.Duration // optional WAN-delay model

	mu      sync.RWMutex
	regions map[string]*regionHist

	drainMu sync.Mutex
}

func newRegionTracker(cap int, delay func(string) time.Duration) *regionTracker {
	if cap <= 0 {
		cap = DefaultRegionCap
	}
	return &regionTracker{
		cap:     cap,
		delay:   delay,
		regions: make(map[string]*regionHist),
	}
}

// Observe records one delivery to a subscriber in region, d after publish.
// When a WAN-delay model is configured the modeled region delay is added —
// in-process deployments measure loopback fan-out, so the model is what puts
// the geography back into the signal.
func (t *regionTracker) Observe(region string, d time.Duration) {
	if region == "" {
		return
	}
	if t.delay != nil {
		d += t.delay(region)
	}
	t.mu.RLock()
	h := t.regions[region]
	t.mu.RUnlock()
	if h == nil {
		t.mu.Lock()
		h = t.regions[region]
		if h == nil {
			if len(t.regions) >= t.cap {
				if h = t.regions[RegionOverflow]; h == nil {
					h = new(regionHist)
					t.regions[RegionOverflow] = h
				}
			} else {
				h = new(regionHist)
				t.regions[region] = h
			}
		}
		t.mu.Unlock()
	}
	h.observe(d)
}

// statsFrom turns a window's bucket deltas into a RegionStats.
func statsFrom(region string, window [RegionBuckets]uint64, sumUs, maxUs int64) (RegionStats, bool) {
	var total uint64
	for _, c := range window {
		total += c
	}
	if total == 0 {
		return RegionStats{}, false
	}
	target := (total*99 + 99) / 100
	var cum uint64
	p99 := RegionBucketUpperMs(RegionBuckets - 1)
	for i, c := range window {
		cum += c
		if cum >= target {
			p99 = RegionBucketUpperMs(i)
			break
		}
	}
	return RegionStats{
		Region:  region,
		Count:   total,
		SumMs:   float64(sumUs) / 1e3,
		MaxMs:   float64(maxUs) / 1e3,
		P99Ms:   p99,
		Buckets: append([]uint64(nil), window[:]...),
	}, true
}

// Drain returns the per-region stats accumulated since the previous Drain
// (the report-window semantics buildReport needs) and advances the window.
func (t *regionTracker) Drain() []RegionStats {
	t.drainMu.Lock()
	defer t.drainMu.Unlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.regions) == 0 {
		return nil
	}
	out := make([]RegionStats, 0, len(t.regions))
	for region, h := range t.regions {
		var window [RegionBuckets]uint64
		for i := range window {
			cum := h.counts[i].Load()
			window[i] = cum - h.prev[i]
			h.prev[i] = cum
		}
		sum := h.sumUs.Load()
		winSum := sum - h.prevSumUs
		h.prevSumUs = sum
		maxUs := h.maxUs.Swap(0)
		if s, ok := statsFrom(region, window, winSum, maxUs); ok {
			out = append(out, s)
		}
	}
	sortRegionStats(out)
	return out
}

// Snapshot returns the cumulative (since-start) per-region stats without
// disturbing the report window — the non-destructive read /debug/latency
// uses.
func (t *regionTracker) Snapshot() []RegionStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.regions) == 0 {
		return nil
	}
	out := make([]RegionStats, 0, len(t.regions))
	for region, h := range t.regions {
		var window [RegionBuckets]uint64
		for i := range window {
			window[i] = h.counts[i].Load()
		}
		if s, ok := statsFrom(region, window, h.sumUs.Load(), h.maxUs.Load()); ok {
			out = append(out, s)
		}
	}
	sortRegionStats(out)
	return out
}

func sortRegionStats(s []RegionStats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Region < s[j-1].Region; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// MergeRegionStats folds b into a (matching regions merge bucket-wise; the
// merged P99 is recomputed from the merged buckets). The balancer uses this
// to aggregate one region's latency across every server reporting it.
func MergeRegionStats(a, b RegionStats) RegionStats {
	var buckets [RegionBuckets]uint64
	for i := range buckets {
		if i < len(a.Buckets) {
			buckets[i] += a.Buckets[i]
		}
		if i < len(b.Buckets) {
			buckets[i] += b.Buckets[i]
		}
	}
	sumUs := int64((a.SumMs + b.SumMs) * 1e3)
	maxMs := a.MaxMs
	if b.MaxMs > maxMs {
		maxMs = b.MaxMs
	}
	merged, ok := statsFrom(a.Region, buckets, sumUs, int64(maxMs*1e3))
	if !ok {
		// Neither side carried buckets; fall back to the scalar fields.
		merged = RegionStats{Region: a.Region, Count: a.Count + b.Count,
			SumMs: a.SumMs + b.SumMs, MaxMs: maxMs}
		if merged.P99Ms = a.P99Ms; b.P99Ms > merged.P99Ms {
			merged.P99Ms = b.P99Ms
		}
	}
	return merged
}
