package loadgen

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/obs"
)

// TestOpenLoopStallDominance is the coordinated-omission regression test:
// inject a stall into the send path and the *intended*-time histogram must
// strictly dominate the *actual*-time one — the queueing delay the stall
// caused shows up as tail latency instead of disappearing. A closed-loop
// harness (which is what the actual-time histogram simulates) reports a
// healthy tail through the same stall.
func TestOpenLoopStallDominance(t *testing.T) {
	rec := NewRecorder()
	const stall = 120 * time.Millisecond
	var stalled atomic.Bool
	rep, err := Run(Options{
		Publishers: 1,
		Rate:       200,
		Duration:   400 * time.Millisecond,
		Seed:       1,
		Recorder:   rec,
		Send: func(pub int, seq uint64, intended, actual time.Duration) error {
			// Instant delivery: intended-time latency is pure send lag,
			// actual-time latency is ~0 — exactly the split a stalled
			// closed-loop publisher hides.
			rec.ObserveAt(intended, actual, rec.Since())
			if seq == 20 && !stalled.Swap(true) {
				time.Sleep(stall) // the publisher wedges mid-run
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rec.Delivered() != rep.Sent {
		t.Fatalf("sent %d delivered %d", rep.Sent, rec.Delivered())
	}
	if rep.BehindSchedule == 0 {
		t.Fatalf("stall did not register behind-schedule sends: %+v", rep)
	}
	if rep.MaxSendLagUs < float64(stall/time.Microsecond)/2 {
		t.Fatalf("max send lag %vµs implausibly small for a %v stall", rep.MaxSendLagUs, stall)
	}
	// Dominance at every quantile, strict at the tail: the stall must
	// inflate intended p99 by most of the stall duration while the actual
	// histogram stays near zero.
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if in, ac := rec.Intended().Quantile(q), rec.Actual().Quantile(q); in < ac {
			t.Errorf("q%v: intended %v < actual %v — omission not surfaced", q, in, ac)
		}
	}
	in99, ac99 := rec.Intended().Quantile(0.99), rec.Actual().Quantile(0.99)
	if in99-ac99 < stall/4 {
		t.Errorf("stall hidden: intended p99 %v vs actual p99 %v (stall %v)", in99, ac99, stall)
	}
}

// TestOpenLoopOnSchedule: with nothing slowing the send path the two
// histograms agree and nothing runs behind schedule.
func TestOpenLoopOnSchedule(t *testing.T) {
	rec := NewRecorder()
	rep, err := Run(Options{
		Publishers: 4,
		Rate:       100,
		Duration:   200 * time.Millisecond,
		Seed:       1,
		Recorder:   rec,
		Send: func(pub int, seq uint64, intended, actual time.Duration) error {
			rec.ObserveAt(intended, actual, rec.Since())
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 publishers × 100/s × 0.2s = 80 scheduled ticks, all sent.
	if rep.Sent != 80 {
		t.Fatalf("sent %d, want 80", rep.Sent)
	}
	if rep.Dropped != 0 || rep.SendErrors != 0 {
		t.Fatalf("unexpected drops/errors: %+v", rep)
	}
}

// TestOpenLoopMaxLagSheds: a hopeless stall with MaxLag set sheds the
// backlog as counted drops instead of sending arbitrarily stale messages.
func TestOpenLoopMaxLagSheds(t *testing.T) {
	rec := NewRecorder()
	first := true
	rep, err := Run(Options{
		Publishers: 1,
		Rate:       500,
		Duration:   200 * time.Millisecond,
		Seed:       1,
		MaxLag:     20 * time.Millisecond,
		Recorder:   rec,
		Send: func(pub int, seq uint64, intended, actual time.Duration) error {
			if first {
				first = false
				time.Sleep(100 * time.Millisecond)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatalf("no ticks shed past MaxLag: %+v", rep)
	}
	if rep.Sent+rep.Dropped == 0 || rep.BehindSchedule == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
}

// TestRecorderChainAggregates: a chained recorder feeds its parent, giving
// the mixed scenario a blended histogram without re-parsing payloads.
func TestRecorderChainAggregates(t *testing.T) {
	parent := NewRecorder()
	a, b := NewRecorderChained(parent), NewRecorderChained(parent)
	p := AppendStamp(nil, time.Millisecond, 2*time.Millisecond, 32)
	if !a.Observe(p) || !b.Observe(p) {
		t.Fatal("observe failed")
	}
	if a.Delivered() != 1 || b.Delivered() != 1 || parent.Delivered() != 2 {
		t.Fatalf("counts: a=%d b=%d parent=%d", a.Delivered(), b.Delivered(), parent.Delivered())
	}
	if parent.Intended().Count() != 2 {
		t.Fatalf("parent histogram count %d", parent.Intended().Count())
	}
}

// TestRecorderExposition: the registered families render as valid
// Prometheus text.
func TestRecorderExposition(t *testing.T) {
	rec := NewRecorder()
	rec.Observe(AppendStamp(nil, time.Millisecond, time.Millisecond, 64))
	rec.Observe([]byte("not a stamp"))
	reg := obs.NewRegistry()
	rec.RegisterMetrics(reg, "dynamoth_loadgen")
	text := reg.String()
	if _, err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"dynamoth_loadgen_delivered_total 1",
		"dynamoth_loadgen_stamp_errors_total 1",
		"dynamoth_loadgen_intended_latency_seconds_count 1",
		"dynamoth_loadgen_actual_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
