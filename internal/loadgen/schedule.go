// Package loadgen is Dynamoth's open-loop load generator. Every message a
// publisher sends has an *intended* send instant fixed in advance by a
// deterministic arrival schedule; latency is measured from that instant, not
// from whenever the publisher actually managed to write the message. A
// closed-loop harness that stamps at actual send time silently forgives its
// own backpressure — when the system under test makes the publisher late,
// the queueing delay it caused vanishes from the histogram (coordinated
// omission). Here it lands in the tail, where the IoT broker-benchmarking
// and Pulsar studies both say throughput-at-bounded-p99 must be read.
package loadgen

import (
	"math"
	"time"
)

// Arrival selects the arrival process of a schedule.
type Arrival int

const (
	// ArrivalPeriodic spaces ticks exactly 1/rate apart (a paced sensor, a
	// market-data feed handler).
	ArrivalPeriodic Arrival = iota
	// ArrivalPoisson draws exponential inter-arrival gaps with mean 1/rate
	// from a seeded generator (independent human-ish publishers).
	ArrivalPoisson
)

func (a Arrival) String() string {
	if a == ArrivalPoisson {
		return "poisson"
	}
	return "periodic"
}

// Schedule is one publisher's deterministic tick plan: the i-th tick's
// intended send instant as an offset from the schedule epoch. The same
// (kind, rate, phase, seed) always yields the same plan, so a run is
// reproducible and two processes can agree on the schedule without
// communicating.
type Schedule struct {
	kind  Arrival
	rate  float64
	phase time.Duration
	seed  uint64
}

// NewSchedule builds a tick plan. rate is ticks per second (must be > 0);
// phase offsets the whole plan (stagger publishers so their ticks do not
// align); seed drives the Poisson gap sequence and is ignored for periodic
// plans.
func NewSchedule(kind Arrival, rate float64, phase time.Duration, seed int64) Schedule {
	if rate <= 0 {
		panic("loadgen: schedule rate must be positive")
	}
	return Schedule{kind: kind, rate: rate, phase: phase, seed: uint64(seed)}
}

// At returns the intended instant of tick i for a periodic schedule,
// computed multiplicatively — phase + i/rate in one float operation — so no
// truncation accumulates. The obvious alternative, adding a
// time.Duration(float64(time.Second)/rate) period per tick, loses the
// sub-nanosecond remainder every tick and under-schedules long runs; that
// exact bug lived in the RGame player loop. Poisson schedules have no random
// access; iterate with Ticks.
func (s Schedule) At(i uint64) time.Duration {
	if s.kind != ArrivalPeriodic {
		panic("loadgen: At is only defined for periodic schedules; use Ticks")
	}
	return s.phase + time.Duration(float64(i)*float64(time.Second)/s.rate)
}

// Ticks returns an iterator over the schedule's intended instants.
func (s Schedule) Ticks() *Ticks {
	return &Ticks{s: s, rng: s.seed}
}

// Ticks iterates a schedule's intended send instants in order.
type Ticks struct {
	s   Schedule
	i   uint64
	t   float64 // accumulated Poisson offset, seconds
	rng uint64
}

// Next returns the next intended instant (an offset from the schedule
// epoch). The sequence is strictly increasing for periodic schedules and
// non-decreasing for Poisson ones.
func (t *Ticks) Next() time.Duration {
	switch t.s.kind {
	case ArrivalPoisson:
		// Exponential gap with mean 1/rate; u is in (0, 1] so Log never
		// sees zero.
		t.rng += 0x9e3779b97f4a7c15
		u := (float64(splitmix64(t.rng)>>11) + 1) / (1 << 53)
		t.t += -math.Log(u) / t.s.rate
		t.i++
		return t.s.phase + time.Duration(t.t*float64(time.Second))
	default:
		at := t.s.At(t.i)
		t.i++
		return at
	}
}

// CountThrough reports how many ticks land at or before horizon — the
// schedule's offered message count for a window of that length.
func (s Schedule) CountThrough(horizon time.Duration) uint64 {
	ticks := s.Ticks()
	var n uint64
	for ticks.Next() <= horizon {
		n++
	}
	return n
}

// splitmix64 is the SplitMix64 output mix over a golden-gamma counter
// stream: a tiny, seedable, allocation-free PRNG good enough for arrival
// jitter (not cryptography).
func splitmix64(x uint64) uint64 {
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
