package loadgen

import "time"

// Payload stamp format: two decimal nanosecond offsets from the run epoch —
// "<intended> <actual> " — followed by 'x' padding up to the requested
// payload size. Digit-led on purpose: the conns driver and the broker's
// control plane already use "first byte is a digit" to tell data stamps from
// binary control envelopes, and this format keeps that contract.

// AppendStamp appends a stamped payload of exactly size bytes (or the bare
// stamp when size is smaller than the stamp needs) to dst and returns the
// extended slice.
func AppendStamp(dst []byte, intended, actual time.Duration, size int) []byte {
	start := len(dst)
	dst = appendDecimal(dst, int64(intended))
	dst = append(dst, ' ')
	dst = appendDecimal(dst, int64(actual))
	dst = append(dst, ' ')
	for len(dst)-start < size {
		dst = append(dst, 'x')
	}
	return dst
}

// ParseStamp reads the two offsets back off a stamped payload. ok is false
// for payloads this package did not stamp.
func ParseStamp(p []byte) (intended, actual time.Duration, ok bool) {
	in, rest, ok := parseDecimal(p)
	if !ok {
		return 0, 0, false
	}
	ac, _, ok := parseDecimal(rest)
	if !ok {
		return 0, 0, false
	}
	return time.Duration(in), time.Duration(ac), true
}

func appendDecimal(dst []byte, n int64) []byte {
	if n < 0 {
		n = 0
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

// parseDecimal reads a space-terminated decimal off p.
func parseDecimal(p []byte) (n int64, rest []byte, ok bool) {
	i := 0
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		n = n*10 + int64(p[i]-'0')
		i++
	}
	if i == 0 || i >= len(p) || p[i] != ' ' {
		return 0, nil, false
	}
	return n, p[i+1:], true
}
