package loadgen

import (
	"math"
	"testing"
	"time"
)

// TestScheduleDeterminism: the same (kind, rate, phase, seed) must yield the
// same arrival plan, tick for tick — the property that makes every scenario
// run reproducible.
func TestScheduleDeterminism(t *testing.T) {
	for _, kind := range []Arrival{ArrivalPeriodic, ArrivalPoisson} {
		a := NewSchedule(kind, 37.5, 11*time.Millisecond, 42).Ticks()
		b := NewSchedule(kind, 37.5, 11*time.Millisecond, 42).Ticks()
		for i := 0; i < 10_000; i++ {
			if x, y := a.Next(), b.Next(); x != y {
				t.Fatalf("%v: tick %d diverged: %v vs %v", kind, i, x, y)
			}
		}
	}
	// Different seeds must give different Poisson plans.
	a := NewSchedule(ArrivalPoisson, 10, 0, 1).Ticks()
	b := NewSchedule(ArrivalPoisson, 10, 0, 2).Ticks()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("poisson schedules with different seeds are identical")
	}
}

// TestScheduleMonotone: intended instants never go backwards (periodic
// strictly increases; Poisson gaps are positive).
func TestScheduleMonotone(t *testing.T) {
	for _, kind := range []Arrival{ArrivalPeriodic, ArrivalPoisson} {
		ticks := NewSchedule(kind, 1000, 0, 7).Ticks()
		prev := time.Duration(-1)
		for i := 0; i < 50_000; i++ {
			at := ticks.Next()
			if at <= prev {
				t.Fatalf("%v: tick %d not increasing: %v after %v", kind, i, at, prev)
			}
			prev = at
		}
	}
}

// TestScheduleRateAccuracy pins the rate-drift bugfix: over a long horizon
// the planned tick count must match rate×duration within 1%. The periodic
// plan is exact by construction (tick i lands at i/rate with no accumulated
// truncation — the per-tick time.Duration arithmetic it replaces
// under-publishes); the Poisson plan converges statistically.
func TestScheduleRateAccuracy(t *testing.T) {
	horizon := 10_000 * time.Second
	for _, rate := range []float64{3, 7, 9.7, 50} {
		want := rate * horizon.Seconds()
		got := float64(NewSchedule(ArrivalPeriodic, rate, 0, 1).CountThrough(horizon))
		if math.Abs(got-want) > 0.01*want {
			t.Errorf("periodic rate %v: %v ticks over %v, want %v ±1%%", rate, got, horizon, want)
		}
		got = float64(NewSchedule(ArrivalPoisson, rate, 0, 1).CountThrough(horizon))
		if math.Abs(got-want) > 0.03*want {
			t.Errorf("poisson rate %v: %v ticks over %v, want %v ±3%%", rate, got, horizon, want)
		}
	}
}

// TestScheduleAtMatchesTicks: random access and iteration agree for
// periodic plans (the game driver uses At, the runner uses Ticks).
func TestScheduleAtMatchesTicks(t *testing.T) {
	s := NewSchedule(ArrivalPeriodic, 9.7, 3*time.Millisecond, 0)
	ticks := s.Ticks()
	for i := uint64(0); i < 10_000; i++ {
		if at, next := s.At(i), ticks.Next(); at != next {
			t.Fatalf("tick %d: At=%v Ticks=%v", i, at, next)
		}
	}
}

func TestStampRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		intended, actual time.Duration
		size             int
	}{
		{0, 0, 64},
		{time.Nanosecond, 2 * time.Nanosecond, 0},
		{1234567890 * time.Nanosecond, 1234567999 * time.Nanosecond, 200},
		{time.Hour, time.Hour + time.Millisecond, 24},
	} {
		p := AppendStamp(nil, tc.intended, tc.actual, tc.size)
		if tc.size > len(p) {
			t.Fatalf("payload shorter than size: %d < %d", len(p), tc.size)
		}
		if p[0] < '0' || p[0] > '9' {
			t.Fatalf("stamp not digit-led: %q", p)
		}
		in, ac, ok := ParseStamp(p)
		if !ok || in != tc.intended || ac != tc.actual {
			t.Fatalf("roundtrip %v/%v: got %v/%v ok=%v", tc.intended, tc.actual, in, ac, ok)
		}
	}
	for _, bad := range [][]byte{nil, []byte(""), []byte("x123 456 "), []byte("123"), []byte("123 "), []byte("123 456")} {
		if _, _, ok := ParseStamp(bad); ok {
			t.Fatalf("ParseStamp accepted %q", bad)
		}
	}
}
