package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/obs"
)

// Delivery latency histogram range: 100 µs floor (same-host broker hop) to
// 60 s ceiling — an open-loop harness must be able to represent a stall of
// most of the run, that being exactly the signal a closed-loop harness
// erases. 192 log buckets ≈ 7% resolution.
const (
	latencyMin     = 100 * time.Microsecond
	latencyMax     = 60 * time.Second
	latencyBuckets = 192
)

// Recorder is the delivery-side half of the harness: subscribers feed every
// stamped payload in, and it maintains two histograms over the same
// deliveries — latency from the *intended* send instant (the honest,
// coordinated-omission-safe figure) and latency from the *actual* send
// instant (what a closed-loop harness would have reported). Intended
// dominates actual by construction; the gap between their tails is the
// queueing delay the publisher's own lateness would otherwise have hidden.
type Recorder struct {
	epoch    time.Time
	intended *metrics.Histogram
	actual   *metrics.Histogram

	delivered atomic.Uint64
	stampErrs atomic.Uint64

	// chain, when non-nil, receives a copy of every observation — used by
	// the mixed multi-tenant scenario to aggregate a blended histogram
	// across per-component recorders.
	chain *Recorder
}

// NewRecorder creates a recorder with its epoch pinned to now. Publishers
// and subscribers of one run must share a single recorder (or recorders
// chained to it) so stamps and arrival readings use the same clock origin.
func NewRecorder() *Recorder {
	return &Recorder{
		epoch:    time.Now(),
		intended: metrics.NewHistogram(latencyMin, latencyMax, latencyBuckets),
		actual:   metrics.NewHistogram(latencyMin, latencyMax, latencyBuckets),
	}
}

// NewRecorderChained creates a recorder whose observations are also fed into
// parent. The child shares the parent's epoch.
func NewRecorderChained(parent *Recorder) *Recorder {
	r := NewRecorder()
	r.epoch = parent.epoch
	r.chain = parent
	return r
}

// Epoch returns the recorder's clock origin.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Since returns the elapsed offset from the epoch — the run's shared clock.
func (r *Recorder) Since() time.Duration { return time.Since(r.epoch) }

// Observe parses a stamped payload and records its delivery at the current
// instant. It reports whether the payload carried a usable stamp;
// unparseable payloads are counted (a non-zero count on a pure loadgen
// channel means frame corruption).
func (r *Recorder) Observe(payload []byte) bool {
	intended, actual, ok := ParseStamp(payload)
	if !ok {
		r.stampErrs.Add(1)
		return false
	}
	r.ObserveAt(intended, actual, r.Since())
	return true
}

// ObserveAt records one delivery given its stamps and arrival offset.
func (r *Recorder) ObserveAt(intended, actual, deliveredAt time.Duration) {
	r.delivered.Add(1)
	r.intended.Observe(deliveredAt - intended)
	r.actual.Observe(deliveredAt - actual)
	if r.chain != nil {
		r.chain.ObserveAt(intended, actual, deliveredAt)
	}
}

// Delivered returns how many stamped deliveries have been observed.
func (r *Recorder) Delivered() uint64 { return r.delivered.Load() }

// StampErrors returns how many payloads failed to parse.
func (r *Recorder) StampErrors() uint64 { return r.stampErrs.Load() }

// Intended returns the intended-send-time latency histogram.
func (r *Recorder) Intended() *metrics.Histogram { return r.intended }

// Actual returns the actual-send-time latency histogram.
func (r *Recorder) Actual() *metrics.Histogram { return r.actual }

// RegisterMetrics exports the recorder on reg under prefix (e.g.
// "dynamoth_loadgen"): both latency histograms plus the delivery and
// stamp-error counters, so a scrape of the harness process shows the same
// figures its BENCH json reports.
func (r *Recorder) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Counter(prefix+"_delivered_total",
		"Stamped deliveries observed by the open-loop recorder.",
		r.delivered.Load)
	reg.Counter(prefix+"_stamp_errors_total",
		"Payloads that failed stamp parsing (corruption on a loadgen channel).",
		r.stampErrs.Load)
	reg.Histogram(prefix+"_intended_latency_seconds",
		"Delivery latency from the intended send instant (coordinated-omission-safe).",
		r.intended, 0.5, 0.99, 0.999)
	reg.Histogram(prefix+"_actual_latency_seconds",
		"Delivery latency from the actual send instant (the closed-loop figure, for contrast).",
		r.actual, 0.5, 0.99, 0.999)
}

// SendFunc publishes one scheduled message. pub is the logical publisher
// index, seq its per-publisher tick number, and intended/actual the stamps
// the payload must carry (offsets from the run recorder's epoch). The
// callback builds the payload with AppendStamp so the delivery side can read
// them back.
type SendFunc func(pub int, seq uint64, intended, actual time.Duration) error

// Options configures an open-loop run.
type Options struct {
	// Publishers is the number of logical publishers, each with its own
	// deterministic schedule (default 1).
	Publishers int
	// Rate is each publisher's arrival rate in messages/second.
	Rate float64
	// Duration is the schedule horizon: ticks are planned over [0, Duration)
	// and the run ends when every publisher has worked through its plan —
	// possibly later than Duration if sending is slow, never with ticks
	// silently dropped.
	Duration time.Duration
	// Arrival selects the arrival process (default periodic).
	Arrival Arrival
	// Seed makes the run reproducible; publisher p uses Seed+p.
	Seed int64
	// MaxLag, when positive, abandons any tick the publisher reaches more
	// than MaxLag late instead of sending it. Dropped ticks are counted —
	// an open-loop harness may shed load, but never silently.
	MaxLag time.Duration
	// BehindThreshold is how late an actual send may run before the tick
	// counts as behind schedule (default: one mean inter-arrival gap).
	BehindThreshold time.Duration
	// Send publishes one message (required).
	Send SendFunc
	// Recorder supplies the shared epoch (required).
	Recorder *Recorder
}

// Report is the generator-side outcome of a run.
type Report struct {
	Publishers       int     `json:"publishers"`
	RatePerPublisher float64 `json:"ratePerPublisher"`
	Arrival          string  `json:"arrival"`
	// OfferedPerSec is the schedule's aggregate arrival rate; Sent is how
	// many scheduled ticks were actually published, Dropped how many were
	// abandoned past MaxLag, SendErrors how many sends failed.
	OfferedPerSec float64 `json:"offeredPerSec"`
	Sent          uint64  `json:"sent"`
	Dropped       uint64  `json:"dropped"`
	SendErrors    uint64  `json:"sendErrors"`
	// BehindSchedule counts sends that ran later than BehindThreshold past
	// their intended instant; MaxSendLagUs is the worst such lag. These are
	// the coordinated-omission tell: a closed-loop harness has no such
	// numbers because it redefines lateness away.
	BehindSchedule uint64  `json:"behindSchedule"`
	MaxSendLagUs   float64 `json:"maxSendLagUs"`
	// WallSecs is how long the run actually took (≥ the schedule horizon
	// when the publisher fell behind).
	WallSecs float64 `json:"wallSecs"`
}

// Run executes the schedule against opts.Send, open-loop: each publisher
// walks its fixed tick plan, sleeping until each intended instant and then
// sending immediately — when it falls behind it does not re-plan, it
// catches up, and the lateness is visible both here (BehindSchedule,
// MaxSendLagUs) and in the recorder's intended-time histogram.
func Run(opts Options) (*Report, error) {
	if opts.Send == nil {
		return nil, fmt.Errorf("loadgen: Options.Send is required")
	}
	if opts.Recorder == nil {
		return nil, fmt.Errorf("loadgen: Options.Recorder is required")
	}
	if opts.Publishers <= 0 {
		opts.Publishers = 1
	}
	if opts.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: Options.Rate must be positive")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Options.Duration must be positive")
	}
	meanGap := time.Duration(float64(time.Second) / opts.Rate)
	if opts.BehindThreshold <= 0 {
		opts.BehindThreshold = meanGap
	}

	rep := &Report{
		Publishers:       opts.Publishers,
		RatePerPublisher: opts.Rate,
		Arrival:          opts.Arrival.String(),
		OfferedPerSec:    opts.Rate * float64(opts.Publishers),
	}
	var sent, dropped, behind, sendErrs atomic.Uint64
	var maxLagNs atomic.Int64

	start := opts.Recorder.Since()
	var wg sync.WaitGroup
	for p := 0; p < opts.Publishers; p++ {
		// Deterministic stagger: publisher p's phase spreads the fleet's
		// ticks evenly across one mean gap so the aggregate arrival stream
		// is smooth, not a synchronized burst every 1/rate seconds.
		phase := time.Duration(float64(meanGap) * float64(p) / float64(opts.Publishers))
		sched := NewSchedule(opts.Arrival, opts.Rate, phase, opts.Seed+int64(p))
		wg.Add(1)
		go func(pub int, sched Schedule) {
			defer wg.Done()
			ticks := sched.Ticks()
			for seq := uint64(0); ; seq++ {
				off := ticks.Next()
				if off >= opts.Duration {
					return
				}
				intended := start + off
				if wait := intended - opts.Recorder.Since(); wait > 0 {
					time.Sleep(wait)
				}
				actual := opts.Recorder.Since()
				lag := actual - intended
				if lag > opts.BehindThreshold {
					behind.Add(1)
					for {
						cur := maxLagNs.Load()
						if int64(lag) <= cur || maxLagNs.CompareAndSwap(cur, int64(lag)) {
							break
						}
					}
				}
				if opts.MaxLag > 0 && lag > opts.MaxLag {
					dropped.Add(1)
					continue
				}
				if err := opts.Send(pub, seq, intended, actual); err != nil {
					sendErrs.Add(1)
					continue
				}
				sent.Add(1)
			}
		}(p, sched)
	}
	wg.Wait()

	rep.Sent = sent.Load()
	rep.Dropped = dropped.Load()
	rep.BehindSchedule = behind.Load()
	rep.SendErrors = sendErrs.Load()
	rep.MaxSendLagUs = float64(maxLagNs.Load()) / 1e3
	rep.WallSecs = (opts.Recorder.Since() - start).Seconds()
	return rep, nil
}

// QuantilesUs digests a histogram into microsecond quantiles for BENCH json.
func QuantilesUs(h *metrics.Histogram) (p50, p99, p999, max float64) {
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	return us(h.Quantile(0.5)), us(h.Quantile(0.99)), us(h.Quantile(0.999)), us(h.Max())
}
