// Package buildinfo carries the binary's build identity for the
// dynamoth_build_info metric and /statusz. Version is injected at link time:
//
//	go build -ldflags "-X github.com/dynamoth/dynamoth/internal/buildinfo.Version=v1.2.3"
//
// and defaults to "dev" for plain `go build` / `go test` binaries.
package buildinfo

import (
	"github.com/dynamoth/dynamoth/internal/obs"
	"runtime"
)

// Version is the ldflags-injected build version.
var Version = "dev"

// GoVersion is the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// Register adds the dynamoth_build_info info metric to r.
func Register(r *obs.Registry) {
	r.Info("dynamoth_build_info",
		"Build identity of this binary; value is always 1.",
		[2]string{"version", Version},
		[2]string{"go_version", GoVersion()},
	)
}
