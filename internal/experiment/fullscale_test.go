package experiment

import (
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/sim"
)

func TestFullScaleFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("full scale")
	}
	dyn := RunScalability(sim.ModeDynamoth, 1200, 1000*time.Second, 1)
	t.Logf("DYNAMOTH:\n%s", dyn.Series.Table())
	t.Logf("dyn maxHealthy=%d peak=%d final=%d rebal=%d meanRT=%.1f",
		dyn.MaxHealthyPlayers, dyn.PeakServers, dyn.FinalServers, dyn.Rebalances, dyn.MeanRTms)
	ch := RunScalability(sim.ModeConsistentHashing, 1200, 1000*time.Second, 1)
	t.Logf("CH:\n%s", ch.Series.Table())
	t.Logf("ch maxHealthy=%d peak=%d rebal=%d meanRT=%.1f",
		ch.MaxHealthyPlayers, ch.PeakServers, ch.Rebalances, ch.MeanRTms)
}
