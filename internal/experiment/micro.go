// Package experiment reproduces every figure of the paper's evaluation
// (§V): the channel-replication micro-benchmarks (Fig. 4a/4b), the
// scalability comparison against consistent hashing (Fig. 5a–c and Fig. 6)
// and the elasticity run (Fig. 7a/7b). Each Run* function drives the
// deterministic simulator with the corresponding workload and returns the
// series the figure plots, plus the headline numbers the paper claims.
package experiment

import (
	"fmt"
	"time"

	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/sim"
)

// MicroOptions parameterizes the Experiment 1 micro-benchmarks.
type MicroOptions struct {
	// Steps are the client counts swept on the X axis (default
	// 100..800 step 100, as in Fig. 4).
	Steps []int
	// PubRate is each publisher's publication rate (default 10/s, §V-C).
	PubRate float64
	// PayloadBytes is the publication payload (default 200).
	PayloadBytes int
	// Replicas is the replica count of the replicated configuration
	// (default 3, as in the paper).
	Replicas int
	// Measure is how long each configuration runs after warmup
	// (default 20 s).
	Measure time.Duration
	// Seed drives the simulation (default 1).
	Seed int64
}

func (o MicroOptions) fill() MicroOptions {
	if len(o.Steps) == 0 {
		o.Steps = []int{100, 200, 300, 400, 500, 600, 700, 800}
	}
	if o.PubRate <= 0 {
		o.PubRate = 10
	}
	if o.PayloadBytes <= 0 {
		o.PayloadBytes = 200
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Measure <= 0 {
		o.Measure = 20 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// MicroResult is one Fig. 4 sweep.
type MicroResult struct {
	// Series columns: noRepl_ms, repl_ms (mean response time),
	// noRepl_delivery, repl_delivery (fraction of expected deliveries).
	Series *metrics.Series
	// MaxHealthyNoRepl and MaxHealthyRepl report the largest step that
	// stayed under 150 ms with ≥99% delivery — the paper's informal
	// "supports up to N" numbers.
	MaxHealthyNoRepl int
	MaxHealthyRepl   int
}

// RunFig4a reproduces Figure 4a (§V-C1, "All Publishers"): one publisher at
// PubRate on one channel, 100..800 subscribers, with and without
// all-publishers replication over Replicas servers.
func RunFig4a(opts MicroOptions) *MicroResult {
	opts = opts.fill()
	series := metrics.NewSeries("subscribers", "noRepl_ms", "repl_ms", "noRepl_delivery", "repl_delivery")
	res := &MicroResult{Series: series}
	for _, n := range opts.Steps {
		rtPlain, delivPlain := runAllPublishersStep(opts, n, false)
		rtRepl, delivRepl := runAllPublishersStep(opts, n, true)
		series.Record(float64(n), "noRepl_ms", rtPlain)
		series.Record(float64(n), "repl_ms", rtRepl)
		series.Record(float64(n), "noRepl_delivery", delivPlain)
		series.Record(float64(n), "repl_delivery", delivRepl)
		if healthy(rtPlain, delivPlain) {
			res.MaxHealthyNoRepl = n
		}
		if healthy(rtRepl, delivRepl) {
			res.MaxHealthyRepl = n
		}
	}
	return res
}

// runAllPublishersStep measures one Fig. 4a point: n subscribers, one
// publisher. Returns mean response time (ms) and delivery fraction.
func runAllPublishersStep(opts MicroOptions, n int, replicated bool) (rtMs, delivery float64) {
	servers := serverNames(opts.Replicas)
	s := sim.New(sim.Config{
		Seed:           opts.Seed,
		Mode:           sim.ModeNone,
		InitialServers: servers,
	})
	const channel = "hot-spot"
	installPlan(s, channel, servers, replicated, plan.StrategyAllPublishers)

	var rt rtAccum
	for i := 0; i < n; i++ {
		c := s.AddClient(uint32(1000 + i))
		c.DeliverAll = true
		c.OnData = rt.observe(s)
		c.Subscribe(channel)
	}
	pub := s.AddClient(999)
	s.RunFor(2 * time.Second) // subscriptions land; switches propagate

	period := time.Duration(float64(time.Second) / opts.PubRate)
	s.Engine().Every(period, func() {
		pub.PublishTimed(channel, opts.PayloadBytes)
	})
	// Warmup: publications teach the publisher the replica set.
	s.RunFor(3 * time.Second)
	rt.reset()
	s.RunFor(opts.Measure)

	expected := float64(n) * opts.PubRate * opts.Measure.Seconds()
	return rt.meanMs(), rt.fraction(expected)
}

// RunFig4b reproduces Figure 4b (§V-C2, "All Subscribers"): 100..800
// publishers at PubRate each on one channel, a single subscriber, with and
// without all-subscribers replication over Replicas servers.
func RunFig4b(opts MicroOptions) *MicroResult {
	opts = opts.fill()
	series := metrics.NewSeries("publishers", "noRepl_ms", "repl_ms", "noRepl_delivery", "repl_delivery")
	res := &MicroResult{Series: series}
	for _, n := range opts.Steps {
		rtPlain, delivPlain := runAllSubscribersStep(opts, n, false)
		rtRepl, delivRepl := runAllSubscribersStep(opts, n, true)
		series.Record(float64(n), "noRepl_ms", rtPlain)
		series.Record(float64(n), "repl_ms", rtRepl)
		series.Record(float64(n), "noRepl_delivery", delivPlain)
		series.Record(float64(n), "repl_delivery", delivRepl)
		if healthy(rtPlain, delivPlain) {
			res.MaxHealthyNoRepl = n
		}
		if healthy(rtRepl, delivRepl) {
			res.MaxHealthyRepl = n
		}
	}
	return res
}

func runAllSubscribersStep(opts MicroOptions, n int, replicated bool) (rtMs, delivery float64) {
	servers := serverNames(opts.Replicas)
	s := sim.New(sim.Config{
		Seed:           opts.Seed,
		Mode:           sim.ModeNone,
		InitialServers: servers,
	})
	const channel = "firehose"
	installPlan(s, channel, servers, replicated, plan.StrategyAllSubscribers)

	var rt rtAccum
	subC := s.AddClient(999)
	subC.DeliverAll = true
	subC.OnData = rt.observe(s)
	subC.Subscribe(channel)

	period := time.Duration(float64(time.Second) / opts.PubRate)
	for i := 0; i < n; i++ {
		pub := s.AddClient(uint32(1000 + i))
		// Stagger each publisher's clock: clients are independent
		// machines, so their 10 msg/s loops are not aligned.
		offset := time.Duration(s.Rand().Float64() * float64(period))
		p := pub
		s.Engine().After(offset, func() {
			s.Engine().Every(period, func() {
				p.PublishTimed(channel, opts.PayloadBytes)
			})
			p.PublishTimed(channel, opts.PayloadBytes)
		})
	}
	s.RunFor(2 * time.Second)
	s.RunFor(3 * time.Second)
	rt.reset()
	s.RunFor(opts.Measure)

	expected := float64(n) * opts.PubRate * opts.Measure.Seconds()
	return rt.meanMs(), rt.fraction(expected)
}

// healthy is the paper's informal serviceability bar: sub-150 ms mean
// response time with (nearly) complete delivery.
func healthy(rtMs, delivery float64) bool {
	return rtMs > 0 && rtMs <= 150 && delivery >= 0.99
}

func serverNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("pub%d", i+1)
	}
	return out
}

// installPlan pins the channel to one server (no replication) or to all
// servers under the given strategy — the manual configuration of §V-C.
func installPlan(s *sim.Sim, channel string, servers []string, replicated bool, strategy plan.Strategy) {
	p := plan.New(servers...)
	p.Version = 2
	if replicated {
		p.Set(channel, plan.Entry{Strategy: strategy, Servers: servers})
	} else {
		p.Set(channel, plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{servers[0]}})
	}
	s.SetPlan(p)
}

// rtAccum accumulates response-time observations.
type rtAccum struct {
	sum   time.Duration
	count int64
}

func (r *rtAccum) observe(s *sim.Sim) func(string, *message.Envelope, time.Time) {
	return func(_ string, _ *message.Envelope, sentAt time.Time) {
		r.sum += s.Now().Sub(sentAt)
		r.count++
	}
}

func (r *rtAccum) reset() { r.sum, r.count = 0, 0 }

func (r *rtAccum) meanMs() float64 {
	if r.count == 0 {
		return 0
	}
	return float64(r.sum.Milliseconds()) / float64(r.count)
}

func (r *rtAccum) fraction(expected float64) float64 {
	if expected <= 0 {
		return 1
	}
	f := float64(r.count) / expected
	if f > 1 {
		f = 1
	}
	return f
}

// Count returns the number of accumulated observations.
func (r *rtAccum) Count() int64 { return r.count }
