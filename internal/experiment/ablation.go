package experiment

import (
	"time"

	"github.com/dynamoth/dynamoth/internal/balancer"
	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/sim"
	"github.com/dynamoth/dynamoth/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out. They are not paper
// figures; they isolate the contribution of individual mechanisms.

// AutoReplicationResult reports the Algorithm-1 ablation.
type AutoReplicationResult struct {
	// ReplicationEnabled reports whether the balancer enabled a
	// replication scheme for the hot channel on its own.
	ReplicationEnabled bool
	// Replicas is the replica count the balancer chose.
	Replicas int
	// DeliveryBefore and DeliveryAfter are delivery fractions measured in
	// equal windows before the balancer could react and at the end.
	DeliveryBefore, DeliveryAfter float64
	// RTBeforeMs and RTAfterMs are the matching mean response times.
	RTBeforeMs, RTAfterMs float64
	// Rebalances counts plan changes.
	Rebalances int
}

// RunAutoReplication exercises Algorithm 1 end to end: the Fig. 4b workload
// (hundreds of publishers flooding one channel toward a single subscriber)
// is offered to a full Dynamoth deployment with NO manual plan. The load
// balancer must detect the publication-heavy channel from LLA metrics
// (P_ratio over AllSubsThreshold, publications over the floor) and enable
// all-subscribers replication itself, restoring delivery.
func RunAutoReplication(publishers int, seed int64) *AutoReplicationResult {
	bcfg := balancer.DefaultConfig()
	bcfg.TWait = 5 * time.Second
	bcfg.MaxServers = 3
	bcfg.MinServers = 3 // the paper's Experiment 1 pins a 3-server pool
	s := sim.New(sim.Config{
		Seed:           seed,
		Mode:           sim.ModeDynamoth,
		InitialServers: []string{"pub1", "pub2", "pub3"},
		Balancer:       bcfg,
	})
	const channel = "firehose"

	var rt rtAccum
	subC := s.AddClient(999)
	subC.DeliverAll = true
	subC.OnData = rt.observe(s)
	subC.Subscribe(channel)

	period := time.Duration(float64(time.Second) / 10)
	for i := 0; i < publishers; i++ {
		pub := s.AddClient(uint32(1000 + i))
		p := pub
		offset := time.Duration(s.Rand().Float64() * float64(period))
		s.Engine().After(offset, func() {
			s.Engine().Every(period, func() { p.PublishTimed(channel, 200) })
			p.PublishTimed(channel, 200)
		})
	}
	s.RunFor(2 * time.Second)

	res := &AutoReplicationResult{}
	// Window 1: before the balancer has had time to act.
	rt.reset()
	window := 8 * time.Second
	s.RunFor(window)
	expected := float64(publishers) * 10 * window.Seconds()
	res.DeliveryBefore = rt.fraction(expected)
	res.RTBeforeMs = rt.meanMs()

	// Give the balancer time to detect and replicate, then measure again.
	s.RunFor(40 * time.Second)
	rt.reset()
	s.RunFor(window)
	res.DeliveryAfter = rt.fraction(expected)
	res.RTAfterMs = rt.meanMs()

	entry, explicit := s.CurrentPlan().Lookup(channel)
	if explicit && len(entry.Servers) > 1 {
		res.ReplicationEnabled = true
		res.Replicas = len(entry.Servers)
	}
	res.Rebalances = len(s.Rebalances())
	return res
}

// TWaitAblationRow is one row of the T_wait sweep.
type TWaitAblationRow struct {
	TWait      time.Duration
	Rebalances int
	MeanRTms   float64
	MaxHealthy int
}

// RunTWaitAblation sweeps the plan-generation spacing T_wait on the
// Experiment-2 workload. Too small churns plans faster than metrics settle;
// too large reacts sluggishly to the ramp.
func RunTWaitAblation(twaits []time.Duration, seed int64) []TWaitAblationRow {
	rows := make([]TWaitAblationRow, 0, len(twaits))
	for _, tw := range twaits {
		res := RunGame(GameOptions{
			Mode:     sim.ModeDynamoth,
			Schedule: workload.ScalabilitySchedule(480, 400*time.Second),
			Tail:     80 * time.Second,
			Seed:     seed,
			TWait:    tw,
		})
		rows = append(rows, TWaitAblationRow{
			TWait:      tw,
			Rebalances: res.Rebalances,
			MeanRTms:   res.MeanRTms,
			MaxHealthy: res.MaxHealthyPlayers,
		})
	}
	return rows
}

// TWaitSeries renders the sweep as a printable series.
func TWaitSeries(rows []TWaitAblationRow) *metrics.Series {
	s := metrics.NewSeries("twait_s", "rebalances", "rt_ms", "healthy_players")
	for _, r := range rows {
		x := r.TWait.Seconds()
		s.Record(x, "rebalances", float64(r.Rebalances))
		s.Record(x, "rt_ms", r.MeanRTms)
		s.Record(x, "healthy_players", float64(r.MaxHealthy))
	}
	return s
}
