package experiment

import (
	"math"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/sim"
	"github.com/dynamoth/dynamoth/internal/workload"
)

// TestPlayerPacingNoDrift pins the update-rate contract of the player loop:
// over a long horizon the number of state updates a player publishes must be
// rate × duration within 1%, including at rates whose period does not divide
// a second evenly. The loop schedules ticks at absolute instants from a
// multiplicative plan; chaining relative After(period) delays instead
// accumulates the truncated sub-nanosecond remainder of 1/rate every tick
// and under-publishes.
func TestPlayerPacingNoDrift(t *testing.T) {
	for _, rate := range []float64{3, 3.3, 7} {
		s := sim.New(sim.Config{
			Seed:     1,
			Mode:     sim.ModeDynamoth,
			Balancer: simBalancerConfig(1, 0),
		})
		g := &gameDriver{
			sim: s,
			opts: GameOptions{
				// One tile: the lone player stays subscribed to the channel
				// it publishes on, so deliveries count its own updates.
				World: workload.Config{TilesX: 1, TilesY: 1, UpdatesPerSec: rate}.FillDefaults(),
			},
			players: make(map[uint32]*playerState),
		}
		g.addPlayer()

		horizon := 1000 * time.Second
		s.RunFor(horizon)

		want := rate * horizon.Seconds()
		got := float64(g.rt.count)
		if math.Abs(got-want) > 0.01*want {
			t.Errorf("rate %v: %v updates delivered over %v, want %v ±1%%", rate, got, horizon, want)
		}
	}
}
