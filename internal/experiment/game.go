package experiment

import (
	"time"

	"github.com/dynamoth/dynamoth/internal/balancer"
	"github.com/dynamoth/dynamoth/internal/loadgen"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/sim"
	"github.com/dynamoth/dynamoth/internal/workload"
)

// GameOptions parameterizes the RGame experiments (Experiments 2 and 3).
type GameOptions struct {
	// Mode selects Dynamoth or the consistent-hashing baseline.
	Mode sim.Mode
	// Schedule is the player-count profile over time.
	Schedule workload.Schedule
	// Tail keeps the simulation running after the schedule ends.
	Tail time.Duration
	// World is the RGame configuration.
	World workload.Config
	// MaxServers caps the pool (default 8, as in the paper).
	MaxServers int
	// SnapshotEvery sets the series row granularity (default 10 s).
	SnapshotEvery time.Duration
	// Seed drives the run (default 1).
	Seed int64
	// TWait overrides the balancer's plan spacing (0 keeps the default);
	// used by the T_wait ablation.
	TWait time.Duration
}

func (o GameOptions) fill() GameOptions {
	if o.Mode == "" {
		o.Mode = sim.ModeDynamoth
	}
	o.World = o.World.FillDefaults()
	if o.MaxServers <= 0 {
		o.MaxServers = 8
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// GameResult bundles one game run's series and headline numbers.
type GameResult struct {
	// Series columns: players, servers, outMsgs (deliveries/s),
	// rt_ms (mean response time in the window), avgLR, maxLR.
	// Rebalance instants appear as marks.
	Series *metrics.Series
	// MaxHealthyPlayers is the largest player count reached before the
	// response time durably crossed 150 ms (three consecutive 10 s windows
	// over the bar; shorter spikes at rebalances are tolerated — the paper
	// notes its own rebalance bursts are "only of short duration") — the
	// paper's "supports up to N players".
	MaxHealthyPlayers int
	// PeakServers is the largest concurrently active server count.
	PeakServers int
	// FinalServers is the pool size at the end (elasticity release).
	FinalServers int
	// Rebalances is the number of plan changes.
	Rebalances int
	// MeanRTms is the response-time mean over the healthy portion.
	MeanRTms float64
	// InstanceSeconds is the cumulative server-seconds the run consumed —
	// the cloud cost the paper's elasticity exists to minimize.
	InstanceSeconds float64
	// AvgLocalPlanSize is the mean client local-plan size at the end of
	// the run (§II-C: lazy propagation keeps client state small).
	AvgLocalPlanSize float64
}

// RunGame executes one RGame run under the given options.
func RunGame(opts GameOptions) *GameResult {
	opts = opts.fill()
	bcfg := simBalancerConfig(opts.MaxServers, opts.TWait)
	s := sim.New(sim.Config{
		Seed:     opts.Seed,
		Mode:     opts.Mode,
		Balancer: bcfg,
	})

	g := &gameDriver{
		sim:     s,
		opts:    opts,
		players: make(map[uint32]*playerState),
	}

	series := metrics.NewSeries("t", "players", "servers", "outMsgs", "rt_ms", "avgLR", "maxLR")
	res := &GameResult{Series: series}
	var lastSnap sim.UnitSnapshot

	// Aggregate unit snapshots into SnapshotEvery rows.
	var winOut int64
	var winUnits int
	var winAvgLR, winMaxLR float64
	var healthySum float64
	var healthyN int
	var unhealthyRun int
	var breached bool
	s.OnUnit(func(u sim.UnitSnapshot) {
		lastSnap = u
		winOut += u.OutMsgs
		winUnits++
		winAvgLR += u.AvgLoadRatio
		if u.MaxLoadRatio > winMaxLR {
			winMaxLR = u.MaxLoadRatio
		}
		if u.ActiveServers > res.PeakServers {
			res.PeakServers = u.ActiveServers
		}
		if u.Elapsed%opts.SnapshotEvery != 0 {
			return
		}
		t := u.Elapsed.Seconds()
		rtMs := g.rt.meanMs()
		series.Record(t, "players", float64(u.Clients))
		series.Record(t, "servers", float64(u.ActiveServers))
		series.Record(t, "outMsgs", float64(winOut)/float64(winUnits))
		series.Record(t, "rt_ms", rtMs)
		series.Record(t, "avgLR", winAvgLR/float64(winUnits))
		series.Record(t, "maxLR", winMaxLR)
		healthy := rtMs > 0 && rtMs <= 150
		if !breached {
			if healthy {
				unhealthyRun = 0
				if u.Clients > res.MaxHealthyPlayers {
					res.MaxHealthyPlayers = u.Clients
				}
			} else {
				unhealthyRun++
				if unhealthyRun >= 3 {
					breached = true // 30 s over the bar: durable breach
				}
			}
		}
		if healthy {
			healthySum += rtMs
			healthyN++
		}
		g.rt.reset()
		winOut, winUnits, winAvgLR, winMaxLR = 0, 0, 0, 0
	})

	// Churn loop; each player runs its own staggered update loop (clients
	// are independent machines in the paper's testbed, so their 3 msg/s
	// clocks are not aligned).
	s.Engine().Every(time.Second, g.churn)

	start := s.Now()
	total := opts.Schedule.Duration() + opts.Tail
	s.RunFor(total)

	for _, r := range s.Rebalances() {
		series.Mark(r.Time.Sub(start).Seconds(), "rebalance")
	}
	res.Rebalances = len(s.Rebalances())
	res.FinalServers = s.ActiveServers()
	res.InstanceSeconds = s.InstanceSeconds()
	res.AvgLocalPlanSize = lastSnap.AvgLocalPlanSize
	if healthyN > 0 {
		res.MeanRTms = healthySum / float64(healthyN)
	}
	return res
}

// RunScalability reproduces Experiment 2 (Fig. 5a–c) for one balancer mode.
// peak and ramp default to the paper's 1200 players joining over rampSec.
func RunScalability(mode sim.Mode, peak int, ramp time.Duration, seed int64) *GameResult {
	return RunGame(GameOptions{
		Mode:     mode,
		Schedule: workload.ScalabilitySchedule(peak, ramp),
		Tail:     ramp / 5,
		Seed:     seed,
	})
}

// RunElasticity reproduces Experiment 3 (Fig. 7a/7b): rise to high, drop to
// low, rise to mid.
func RunElasticity(high, low, mid int, phase time.Duration, seed int64) *GameResult {
	return RunGame(GameOptions{
		Mode:     sim.ModeDynamoth,
		Schedule: workload.ElasticitySchedule(high, low, mid, phase),
		Tail:     phase / 2,
		Seed:     seed,
	})
}

func simBalancerConfig(maxServers int, twait time.Duration) balancer.Config {
	cfg := balancer.DefaultConfig()
	cfg.MaxServers = maxServers
	cfg.MinServers = 1
	if twait > 0 {
		cfg.TWait = twait
	}
	return cfg
}

// gameDriver drives players in the simulator.
type gameDriver struct {
	sim     *sim.Sim
	opts    GameOptions
	players map[uint32]*playerState
	order   []uint32 // join order, for deterministic iteration and removal
	nextID  uint32
	rt      rtAccum
}

type playerState struct {
	avatar *workload.Player
	client *sim.Client
}

// churn adds or removes players to match the schedule.
func (g *gameDriver) churn() {
	target := g.opts.Schedule.CountAt(g.sim.Elapsed())
	for len(g.players) < target {
		g.addPlayer()
	}
	for len(g.players) > target {
		g.removePlayer()
	}
}

func (g *gameDriver) addPlayer() {
	g.nextID++
	id := g.nextID
	avatar := workload.NewPlayer(id, g.opts.World, g.sim.Rand())
	client := g.sim.AddClient(id)
	client.OnData = func(_ string, _ *message.Envelope, sentAt time.Time) {
		g.rt.sum += g.sim.Now().Sub(sentAt)
		g.rt.count++
	}
	client.Subscribe(avatar.Tile())
	ps := &playerState{avatar: avatar, client: client}
	g.players[id] = ps
	g.order = append(g.order, id)

	// Staggered per-player update loop: random phase, fixed rate. Ticks are
	// scheduled at absolute instants off a drift-free plan — chaining
	// After(period) truncates the sub-nanosecond remainder of 1/rate every
	// tick, which under-publishes long runs at rates that do not divide a
	// second evenly (3/s lost ~1 update per player-hour).
	period := time.Duration(float64(time.Second) / g.opts.World.UpdatesPerSec)
	offset := time.Duration(g.sim.Rand().Float64() * float64(period))
	sched := loadgen.NewSchedule(loadgen.ArrivalPeriodic, g.opts.World.UpdatesPerSec, offset, 0)
	joined := g.sim.Now()
	var tick uint64
	var loop func()
	loop = func() {
		if g.players[id] != ps {
			return // player left
		}
		g.step(ps, period)
		tick++
		g.sim.Engine().At(joined.Add(sched.At(tick)), loop)
	}
	g.sim.Engine().At(joined.Add(sched.At(0)), loop)
}

// step advances one player by one update period and publishes its state.
func (g *gameDriver) step(ps *playerState, dt time.Duration) {
	if changed, oldTile := ps.avatar.Advance(g.sim.Elapsed(), dt, g.sim.Rand()); changed {
		// Subscribe to the new tile before leaving the old one, as the
		// game does, so no update is missed at the boundary.
		ps.client.Subscribe(ps.avatar.Tile())
		ps.client.Unsubscribe(oldTile)
	}
	ps.client.PublishTimed(ps.avatar.Tile(), g.opts.World.PayloadBytes)
}

func (g *gameDriver) removePlayer() {
	// Most recent joiner leaves first (deterministic LIFO).
	for len(g.order) > 0 {
		id := g.order[len(g.order)-1]
		g.order = g.order[:len(g.order)-1]
		if _, ok := g.players[id]; !ok {
			continue
		}
		delete(g.players, id)
		g.sim.RemoveClient(id)
		return
	}
}
