package experiment

import (
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/sim"
	"github.com/dynamoth/dynamoth/internal/workload"
)

// These tests assert the paper's qualitative claims at reduced scale; the
// full-scale reproduction lives in TestFullScaleFig5 and cmd/experiments.

func TestFig4aShape(t *testing.T) {
	res := RunFig4a(MicroOptions{Steps: []int{100, 400, 800}, Measure: 10 * time.Second})
	t.Logf("fig4a:\n%s", res.Series.Table())

	// Claim 1 (§V-C1): without replication response time grows with the
	// subscriber count and collapses well before 800.
	rt100, _ := res.Series.Get(100, "noRepl_ms")
	rt400, _ := res.Series.Get(400, "noRepl_ms")
	rt800, _ := res.Series.Get(800, "noRepl_ms")
	if !(rt100 < rt400 && rt400 < rt800) {
		t.Fatalf("no-replication response time not increasing: %f %f %f", rt100, rt400, rt800)
	}
	if rt800 < 500 {
		t.Fatalf("no-replication did not collapse at 800 subscribers: %.1fms", rt800)
	}
	// Claim 2: 3-server all-publishers replication stays low through 800.
	rtRepl800, _ := res.Series.Get(800, "repl_ms")
	if rtRepl800 > 150 {
		t.Fatalf("replicated configuration unhealthy at 800 subscribers: %.1fms", rtRepl800)
	}
	if res.MaxHealthyRepl != 800 {
		t.Fatalf("replicated healthy up to %d, want 800", res.MaxHealthyRepl)
	}
}

func TestFig4bShape(t *testing.T) {
	res := RunFig4b(MicroOptions{Steps: []int{100, 200, 400, 600}, Measure: 10 * time.Second})
	t.Logf("fig4b:\n%s", res.Series.Table())

	// Claim (§V-C2): a single server supports up to ~200 publishers, then
	// delivery fails; 3-server all-subscribers replication reaches ~600.
	if res.MaxHealthyNoRepl != 200 {
		t.Fatalf("no-replication healthy up to %d publishers, want 200", res.MaxHealthyNoRepl)
	}
	// Beyond ~200 publishers the single subscriber connection overflows;
	// the connection is killed and the client reconnects, so delivery is
	// measurably broken (the paper reports outright failure; our client
	// rides the kill/reconnect cycle and loses a visible fraction).
	d400, _ := res.Series.Get(400, "noRepl_delivery")
	if d400 >= 0.99 {
		t.Fatalf("no-replication delivery at 400 publishers: %.2f, want failing", d400)
	}
	dRepl600, _ := res.Series.Get(600, "repl_delivery")
	if dRepl600 < 0.99 {
		t.Fatalf("replicated delivery at 600 publishers: %.2f, want ~1", dRepl600)
	}
}

func TestFig5ShapeSmall(t *testing.T) {
	dyn := RunScalability(sim.ModeDynamoth, 400, 300*time.Second, 1)
	t.Logf("dynamoth: healthy=%d peak=%d rebal=%d meanRT=%.1f",
		dyn.MaxHealthyPlayers, dyn.PeakServers, dyn.Rebalances, dyn.MeanRTms)

	// At this scale the pool must grow and hold the paper's ~75ms steady
	// state while healthy.
	if dyn.PeakServers < 2 {
		t.Fatalf("Dynamoth never scaled: peak=%d", dyn.PeakServers)
	}
	if dyn.MeanRTms < 50 || dyn.MeanRTms > 120 {
		t.Fatalf("steady response time %.1fms, want ~75ms", dyn.MeanRTms)
	}
	if dyn.MaxHealthyPlayers < 300 {
		t.Fatalf("Dynamoth healthy only to %d of 400 players", dyn.MaxHealthyPlayers)
	}
	if dyn.Rebalances == 0 {
		t.Fatal("no rebalances recorded")
	}
}

func TestFig7ShapeSmall(t *testing.T) {
	res := RunElasticity(400, 100, 300, 150*time.Second, 1)
	t.Logf("elasticity: peak=%d final=%d rebal=%d meanRT=%.1f",
		res.PeakServers, res.FinalServers, res.Rebalances, res.MeanRTms)

	// Claims (§V-E): servers are added on the rise and released after the
	// drop; steady latency stays low.
	if res.PeakServers < 2 {
		t.Fatalf("no scale-up: peak=%d", res.PeakServers)
	}
	if res.FinalServers >= res.PeakServers {
		t.Fatalf("no release after load drop: final=%d peak=%d", res.FinalServers, res.PeakServers)
	}
	if res.MeanRTms < 50 || res.MeanRTms > 120 {
		t.Fatalf("steady response time %.1fms, want ~75ms", res.MeanRTms)
	}
}

func TestGameDeterminism(t *testing.T) {
	run := func() (int, int, float64) {
		r := RunGame(GameOptions{
			Mode:     sim.ModeDynamoth,
			Schedule: workload.Schedule{Initial: 150, Phases: []workload.Phase{{Length: 60 * time.Second, Target: 200}}},
			Seed:     7,
		})
		return r.MaxHealthyPlayers, r.Rebalances, r.MeanRTms
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("same seed diverged: (%d,%d,%f) vs (%d,%d,%f)", a1, b1, c1, a2, b2, c2)
	}
}

func TestAlgorithmOneEnablesReplicationAutomatically(t *testing.T) {
	// The Fig. 4b firehose offered to a full Dynamoth deployment with no
	// manual plan: the balancer must enable all-subscribers replication by
	// itself (Algorithm 1) and restore healthy delivery.
	res := RunAutoReplication(400, 1)
	t.Logf("auto-replication: %+v", res)
	if !res.ReplicationEnabled {
		t.Fatal("balancer never enabled replication for the hot channel")
	}
	if res.Replicas < 2 {
		t.Fatalf("replicas=%d, want >=2", res.Replicas)
	}
	if res.DeliveryAfter < 0.99 {
		t.Fatalf("delivery after replication %.2f, want ~1 (before: %.2f)",
			res.DeliveryAfter, res.DeliveryBefore)
	}
	if res.DeliveryAfter <= res.DeliveryBefore && res.DeliveryBefore < 0.99 {
		t.Fatalf("replication did not improve delivery: %.2f -> %.2f",
			res.DeliveryBefore, res.DeliveryAfter)
	}
}

func TestTWaitAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is seconds-long")
	}
	rows := RunTWaitAblation([]time.Duration{5 * time.Second, 10 * time.Second, 30 * time.Second}, 1)
	t.Logf("twait ablation:\n%s", TWaitSeries(rows).Table())
	// Longer T_wait means fewer plan changes at the endpoints (the middle
	// settings can reorder slightly: each plan's content differs, so the
	// count is not strictly monotone).
	if rows[0].Rebalances < rows[len(rows)-1].Rebalances {
		t.Fatalf("more rebalances at T_wait=%v than at %v: %+v",
			rows[len(rows)-1].TWait, rows[0].TWait, rows)
	}
	// All settings must keep the workload healthy at this scale.
	for _, r := range rows {
		if r.MeanRTms < 50 || r.MeanRTms > 130 {
			t.Fatalf("T_wait=%v unhealthy: rt=%.1fms", r.TWait, r.MeanRTms)
		}
	}
}

func TestLocalPlanStaysSmall(t *testing.T) {
	// §II-C: lazy propagation keeps client plans small — each client only
	// holds entries for channels it actually used recently.
	// Enough load that the balancer migrates channels (before the first
	// reconfiguration clients hold no entries at all — that is the lazy
	// scheme working).
	res := RunScalability(sim.ModeDynamoth, 400, 300*time.Second, 3)
	if res.Rebalances == 0 {
		t.Fatal("workload never triggered a rebalance")
	}
	if res.AvgLocalPlanSize <= 0 {
		t.Fatal("no local-plan entries measured despite rebalances")
	}
	// 64 tiles exist; a player interacts with a handful at a time.
	if res.AvgLocalPlanSize > 16 {
		t.Fatalf("mean local plan holds %.1f entries — lazy propagation is leaking state", res.AvgLocalPlanSize)
	}
}

func TestElasticityCheaperThanFixedPool(t *testing.T) {
	res := RunElasticity(400, 100, 300, 150*time.Second, 1)
	xs := res.Series.Xs()
	duration := xs[len(xs)-1]
	fixedPool := 8 * duration // 8 servers for the whole run, in server-seconds
	if res.InstanceSeconds <= 0 {
		t.Fatal("no instance time accounted")
	}
	if res.InstanceSeconds >= fixedPool {
		t.Fatalf("elastic run cost %.0f server-seconds, fixed pool %.0f — elasticity saved nothing",
			res.InstanceSeconds, fixedPool)
	}
}
