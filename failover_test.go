package dynamoth

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/transport"
)

// flakyDialer wraps a transport dialer, failing dials to servers marked
// dead and recording the (virtual) time of every dial attempt per server.
type flakyDialer struct {
	inner transport.Dialer
	clk   clock.Clock

	mu       sync.Mutex
	dead     map[plan.ServerID]bool
	attempts map[plan.ServerID][]time.Time
}

func newFlakyDialer(inner transport.Dialer, clk clock.Clock) *flakyDialer {
	return &flakyDialer{
		inner:    inner,
		clk:      clk,
		dead:     make(map[plan.ServerID]bool),
		attempts: make(map[plan.ServerID][]time.Time),
	}
}

func (f *flakyDialer) setDead(server plan.ServerID, dead bool) {
	f.mu.Lock()
	f.dead[server] = dead
	f.mu.Unlock()
}

func (f *flakyDialer) attemptsTo(server plan.ServerID) []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Time(nil), f.attempts[server]...)
}

func (f *flakyDialer) Dial(server plan.ServerID, h transport.Handler) (transport.Conn, error) {
	f.mu.Lock()
	f.attempts[server] = append(f.attempts[server], f.clk.Now())
	dead := f.dead[server]
	f.mu.Unlock()
	if dead {
		return nil, errors.New("dial refused: server down")
	}
	return f.inner.Dial(server, h)
}

// fallbackChannel returns a channel name whose consistent-hash home in the
// given plan is server.
func fallbackChannel(t *testing.T, p *plan.Plan, server plan.ServerID) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		ch := fmt.Sprintf("room-%d", i)
		if p.Home(ch) == server {
			return ch
		}
	}
	t.Fatalf("no channel hashes to %s", server)
	return ""
}

// TestFailoverPublishBackoffSpacing crashes a broker and asserts the
// publisher (a) keeps publishing by substituting the ring successor, (b)
// redials the dead server with exponential, capped spacing, and (c) never
// hot-spins: publishes between backoff expiries trigger no dials.
func TestFailoverPublishBackoffSpacing(t *testing.T) {
	manual := clock.NewManual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	d := newTestDeployment(t, "s1", "s2")
	flaky := newFlakyDialer(d.dialer, manual)

	const redialMin = 100 * time.Millisecond
	const redialMax = 800 * time.Millisecond
	pub, err := ConnectWithDialer(flaky, d.servers, Config{
		NodeID:    500,
		Clock:     manual,
		RedialMin: redialMin,
		RedialMax: redialMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	p := plan.New(d.servers...)
	ch := fallbackChannel(t, p, "s1")
	if err := pub.Publish(ch, []byte("pre-crash")); err != nil {
		t.Fatal(err)
	}
	baseline := len(flaky.attemptsTo("s1"))

	// Crash s1: refuse future dials and kill existing connections.
	flaky.setDead("s1", true)
	d.brokers["s1"].Close()
	// Wait for the disconnect callback to arm the redial backoff.
	deadline := time.Now().Add(2 * time.Second)
	for pub.Stats().Redials == 0 && pub.Stats().DialFailures == 0 {
		if time.Now().After(deadline) {
			break // backoff armed by the disconnect itself; proceed
		}
		time.Sleep(5 * time.Millisecond)
		if err := pub.Publish(ch, []byte("probe")); err == nil &&
			len(flaky.attemptsTo("s2")) > 0 {
			break // already failed over
		}
	}

	// Publishes must fail over to s2 without redialing s1 (backoff window).
	if err := pub.Publish(ch, []byte("failover")); err != nil {
		t.Fatalf("publish after crash did not fail over: %v", err)
	}

	// Drive virtual time in small steps, publishing every step. Dial
	// attempts to s1 may only happen when a backoff window expires.
	var stormErr error
	for i := 0; i < 100; i++ {
		manual.Advance(50 * time.Millisecond)
		for j := 0; j < 5; j++ { // hot-loop publishes within one instant
			if err := pub.Publish(ch, []byte("x")); err != nil && stormErr == nil {
				stormErr = err
			}
		}
	}
	if stormErr != nil {
		t.Fatalf("publish during backoff failed: %v", stormErr)
	}

	atts := flaky.attemptsTo("s1")[baseline:]
	// 5 s of virtual time with delays in [min/2, max]: attempts bounded by
	// 5s/(min/2)=100 in theory, but exponential growth caps them hard.
	if len(atts) < 3 {
		t.Fatalf("only %d redial attempts in 5s virtual", len(atts))
	}
	if len(atts) > 20 {
		t.Fatalf("%d redial attempts in 5s virtual: hot-spin", len(atts))
	}
	for i := 1; i < len(atts); i++ {
		gap := atts[i].Sub(atts[i-1])
		if gap < redialMin/2 {
			t.Fatalf("attempts %d→%d spaced %v, want ≥ %v", i-1, i, gap, redialMin/2)
		}
		if gap > redialMax+100*time.Millisecond {
			t.Fatalf("attempts %d→%d spaced %v, want ≤ cap %v (+step)", i-1, i, gap, redialMax)
		}
	}
	// Spacing grows until the cap: the last gap must be well above the first.
	first := atts[1].Sub(atts[0])
	last := atts[len(atts)-1].Sub(atts[len(atts)-2])
	if last < first {
		t.Fatalf("backoff not growing: first gap %v, last gap %v", first, last)
	}
	if s := pub.Stats(); s.DialFailures == 0 {
		t.Fatalf("stats did not count dial failures: %+v", s)
	}
}

// TestFailoverSubscriptionRepair crashes the broker holding a subscription
// and asserts the subscription is re-homed onto the surviving ring successor
// (no subscription lost) and that post-repair publishes are delivered
// exactly once.
func TestFailoverSubscriptionRepair(t *testing.T) {
	manual := clock.NewManual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	d := newTestDeployment(t, "s1", "s2")

	sub, err := ConnectWithDialer(d.dialer, d.servers, Config{NodeID: 600, Clock: manual})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := ConnectWithDialer(d.dialer, d.servers, Config{NodeID: 601, Clock: manual})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	p := plan.New(d.servers...)
	ch := fallbackChannel(t, p, "s1")
	msgs, err := sub.Subscribe(ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ch, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if m := recvMsg(t, msgs); string(m.Payload) != "before" {
		t.Fatalf("payload=%q", m.Payload)
	}

	// Crash s1. The subscriber's prompt repair sweep (woken by the
	// disconnect, not the timer) must move the subscription to s2.
	d.brokers["s1"].Close()
	deadline := time.Now().Add(3 * time.Second)
	for d.brokers["s2"].Subscribers(ch) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not re-homed onto the survivor")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Post-repair publishes flow again, exactly once each.
	const n = 20
	go func() {
		for i := 0; i < n; i++ {
			_ = pub.Publish(ch, []byte(fmt.Sprintf("msg-%d", i)))
		}
	}()
	got := make(map[string]int, n)
	timeout := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case m, ok := <-msgs:
			if !ok {
				t.Fatal("stream closed mid-recovery")
			}
			got[string(m.Payload)]++
			if got[string(m.Payload)] > 1 {
				t.Fatalf("duplicate delivery of %q", m.Payload)
			}
		case <-timeout:
			t.Fatalf("received %d/%d post-repair messages", len(got), n)
		}
	}
}

// TestFailoverRepairInbox crashes the broker hosting the client's redirect
// inbox and asserts the inbox subscription is re-homed, so dispatcher
// redirects keep reaching the client.
func TestFailoverRepairInbox(t *testing.T) {
	manual := clock.NewManual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	d := newTestDeployment(t, "s1", "s2")
	p := plan.New(d.servers...)

	// Find a node ID whose inbox hashes to s1.
	var nodeID uint32
	for id := uint32(700); id < 10000; id++ {
		if p.Home(plan.InboxChannel(id)) == "s1" {
			nodeID = id
			break
		}
	}
	if nodeID == 0 {
		t.Fatal("no node ID homes its inbox on s1")
	}
	cl, err := ConnectWithDialer(d.dialer, d.servers, Config{NodeID: nodeID, Clock: manual})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	inbox := plan.InboxChannel(nodeID)
	if d.brokers["s1"].Subscribers(inbox) != 1 {
		t.Fatalf("inbox not on s1: %d subscribers", d.brokers["s1"].Subscribers(inbox))
	}

	d.brokers["s1"].Close()
	deadline := time.Now().Add(3 * time.Second)
	for d.brokers["s2"].Subscribers(inbox) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("inbox not re-homed after crash")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFailoverNoGoroutineLeak runs a crash/repair cycle and verifies client
// teardown leaks no goroutines.
func TestFailoverNoGoroutineLeak(t *testing.T) {
	manual := clock.NewManual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	d := newTestDeployment(t, "s1", "s2")
	p := plan.New(d.servers...)
	ch := fallbackChannel(t, p, "s1")

	// Baseline after the deployment is up: the check isolates goroutines
	// owned by the client (and its broker sessions).
	before := runtime.NumGoroutine()

	cl, err := ConnectWithDialer(d.dialer, d.servers, Config{NodeID: 800, Clock: manual})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe(ch); err != nil {
		t.Fatal(err)
	}
	d.brokers["s1"].Close()
	deadline := time.Now().Add(3 * time.Second)
	for d.brokers["s2"].Subscribers(ch) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no repair")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op.
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	deadline = time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
