# Dynamoth — common development targets.

GO ?= go

.PHONY: all build test test-short race chaos replay obs latency conns channels scenarios bench experiments examples vet clean

# Build identity baked into binaries and the dynamoth_build_info metric.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -X github.com/dynamoth/dynamoth/internal/buildinfo.Version=$(VERSION)

all: vet test

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

vet:
	$(GO) vet ./...

# Full suite, including the minutes-long full-scale Figure 5 reproduction.
test:
	$(GO) test ./...

# Everything except the slow full-scale runs.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

# Fault-tolerance suite (broker crashes, partitions, client failover),
# twice under the race detector.
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Fail|Crash' ./...

# Zero-loss delivery suite: cursor encoding + seq tracker + replay ring
# property tests, the dedup-window interop regressions, and the chaos
# zero-loss scenarios, all under the race detector — then the publish hot
# path with replay rings enabled must still run at 0 allocs/op.
replay:
	$(GO) test -race -run 'Replay|Cursor|SeqTracker|Dedup' ./...
	$(GO) test -race -count=1 -run 'TestChaosBrokerCrashMidPublishStorm|TestChaosRebalanceDrainZeroLoss' ./cluster/
	$(GO) test -run xxx -bench 'BenchmarkBrokerFanOut|BenchmarkBrokerPublishParallel|BenchmarkBrokerPublishReplay' -benchmem .

# Observability suite: exposition/registry/admin unit tests, the scrape
# cross-checks, the flight-recorder (trace) package under the race
# detector, and the exec-based dynamoth-node admin endpoint test.
obs:
	$(GO) test -race -run 'Obs|Metrics|Scrape|Admin|TopK|Exposition|Stamp|Quantile|Trace|Events|Timeline|Tail' ./...
	$(GO) test -race ./internal/trace/
	$(GO) test -run TestAdminEndpointIntegration ./cmd/dynamoth-node/

# Latency-waterfall suite: the multi-stage stamp wire format, the stage
# histograms and region attribution through the LLA report path, and the
# waterfall endpoints/CLI, all under the race detector — then the publish hot
# path with stage stamping enabled must still run at 0 allocs/op.
latency:
	$(GO) test -race -run 'Stage|Waterfall|Region|LatencyTopK|BuildInfo|ShowLatency|Skew' ./...
	$(GO) test -race ./internal/message/ ./internal/lla/
	$(GO) test -run xxx -bench 'BenchmarkBrokerPublishParallel|BenchmarkBrokerPublishReplay|BenchmarkPeekStageStamp' -benchmem ./...

# Connection-scale suite: both connection cores' protocol/churn/shutdown
# tests under the race detector, then a reduced-scale run of the C100k
# harness (real dynamoth-node subprocess, multiplexed epoll load driver;
# writes BENCH_conns.json). Linux-only — the reactor runs are skipped
# elsewhere. CONNS overrides the target count.
CONNS ?= 5000
conns:
	$(GO) test -race -run 'ConnCore|Reactor|FDTable|ConnBench' ./internal/broker/ ./internal/workload/
	$(GO) run ./cmd/experiments -run conns -conns $(CONNS)

# Channel-scale suite: the bounded hot-state packages (cache, client local
# plan, LLA accumulator) under the race detector, then the channel soak — a
# real dynamoth-node subprocess taking one publication on each of CHANNELS
# distinct channels; RSS on both sides must stay flat from CHANNELS/10 to
# CHANNELS (writes BENCH_channels.json). CHANNELS overrides the target.
CHANNELS ?= 1000000
channels:
	$(GO) test -race ./internal/hotstate/ ./internal/localplan/ ./internal/lla/
	$(GO) run ./cmd/experiments -run channels -channels $(CHANNELS)

# Scenario suite: the open-loop load-generator tests under the race
# detector, then every scenario (IoT fan-in, market fan-out, chat churn,
# mixed multi-tenant) against a real dynamoth-node subprocess. Latency is
# measured from intended send instants (coordinated-omission-safe); each
# scenario writes BENCH_scenario_<name>.json. SCENARIO_SCALE shrinks the
# load shape-preserving; SCENARIO selects one by name.
SCENARIO_SCALE ?= 1.0
SCENARIO ?=
scenarios:
	$(GO) test -race ./internal/loadgen/ -run 'Schedule|Stamp|OpenLoop|Recorder'
	$(GO) test -race ./internal/workload/ -run 'Scenario'
	$(GO) run ./cmd/experiments -run scenarios -scenario '$(SCENARIO)' -scenario-scale $(SCENARIO_SCALE)

# Reduced-scale figure benches + substrate microbenches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at full scale (writes to stdout;
# the checked-in experiments_output.txt is this output for seed 1).
experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chat
	$(GO) run ./examples/game
	$(GO) run ./examples/elastic

clean:
	$(GO) clean ./...
