package dynamoth_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/balancer"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/server"
	"github.com/dynamoth/dynamoth/internal/transport"
)

// tcpDeployment assembles a complete distributed deployment over real TCP
// sockets: the same wiring as the dynamoth-node and dynamoth-lb daemons,
// in-process for the test.
type tcpDeployment struct {
	ids    []string
	addrs  map[plan.ServerID]string
	nodes  map[plan.ServerID]*server.Node
	orch   *balancer.Orchestrator
	dialer *transport.TCPDialer
}

func startTCPDeployment(t *testing.T, n int) *tcpDeployment {
	t.Helper()
	d := &tcpDeployment{
		addrs: make(map[plan.ServerID]string),
		nodes: make(map[plan.ServerID]*server.Node),
	}
	listeners := make(map[plan.ServerID]net.Listener)
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("pub%d", i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.ids = append(d.ids, id)
		d.addrs[id] = ln.Addr().String()
		listeners[id] = ln
	}
	d.dialer = transport.NewTCPDialer(d.addrs)

	initial := plan.New(d.ids...)
	initial.Version = 1
	fwd := transport.NewPooledForwarder(d.dialer)
	t.Cleanup(fwd.Close)

	for i, id := range d.ids {
		node, err := server.New(server.Options{
			ID:             id,
			NodeNum:        uint32(0xDC00 + i),
			Initial:        initial.Clone(),
			Forwarder:      fwd,
			MaxOutgoingBps: 1.25e6,
			ReportEvery:    time.Second,
			PublishReports: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.nodes[id] = node
		ln := listeners[id]
		served := make(chan struct{})
		go func() {
			defer close(served)
			node.ServeTCP(ln) //nolint:errcheck // ends on close
		}()
		t.Cleanup(func() {
			node.Close()
			ln.Close()
			<-served
		})
	}

	// The load balancer, wired exactly like cmd/dynamoth-lb.
	reports := make(chan *lla.Report, 64)
	conns := make(map[plan.ServerID]transport.Conn)
	for _, id := range d.ids {
		conn, err := d.dialer.Dial(id, tcpReportHandler{reports})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		if err := conn.Subscribe(plan.ReportChannel); err != nil {
			t.Fatal(err)
		}
		conns[id] = conn
	}
	cfg := balancer.DefaultConfig()
	cfg.TWait = time.Second
	cfg.MaxServers = n
	cfg.MinServers = n
	pinned := func(s string) bool { return s == d.ids[0] }
	gen := message.NewGenerator(0xB1B)
	d.orch = balancer.NewOrchestrator(balancer.OrchestratorOptions{
		Planner: balancer.NewPlanner(cfg, plan.IsControlChannel, pinned, 1.25e6),
		Config:  cfg,
		Initial: initial,
		Reports: reports,
		PublishPlan: func(p *plan.Plan) {
			data, err := p.Marshal()
			if err != nil {
				return
			}
			env := &message.Envelope{Type: message.TypePlan, ID: gen.Next(), Payload: data}
			payload := env.Marshal()
			for _, conn := range conns {
				_ = conn.Publish(plan.PlanChannel, payload)
			}
		},
	})
	go d.orch.Run()
	t.Cleanup(d.orch.Stop)
	return d
}

type tcpReportHandler struct{ reports chan<- *lla.Report }

func (h tcpReportHandler) OnMessage(_ string, payload []byte) {
	env, err := message.Unmarshal(payload)
	if err != nil || env.Type != message.TypeLoadReport {
		return
	}
	if r, err := lla.UnmarshalReport(env.Payload); err == nil {
		select {
		case h.reports <- r:
		default:
		}
	}
}
func (tcpReportHandler) OnDisconnect(error) {}

func TestTCPDeploymentEndToEnd(t *testing.T) {
	d := startTCPDeployment(t, 2)

	sub, err := dynamoth.Connect(dynamoth.Config{Addrs: d.addrs, NodeID: 501})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := dynamoth.Connect(dynamoth.Config{Addrs: d.addrs, NodeID: 502})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Channels routed across both servers, over real sockets.
	for i := 0; i < 6; i++ {
		ch := fmt.Sprintf("wire-%d", i)
		msgs, err := sub.Subscribe(ch)
		if err != nil {
			t.Fatal(err)
		}
		// TCP subscriptions land asynchronously; retry until delivery.
		deadline := time.Now().Add(3 * time.Second)
		for {
			if err := pub.Publish(ch, []byte(ch)); err != nil {
				t.Fatal(err)
			}
			select {
			case m := <-msgs:
				if string(m.Payload) != ch {
					t.Fatalf("payload=%q", m.Payload)
				}
			case <-time.After(100 * time.Millisecond):
				if time.Now().After(deadline) {
					t.Fatalf("no delivery on %s", ch)
				}
				continue
			}
			break
		}
	}
}

// TestTCPClientFlush: Flush is the barrier between "Publish returned" and
// "the broker acked it" — after Flush every pipelined publish is on the
// server, and a closed client refuses the call.
func TestTCPClientFlush(t *testing.T) {
	d := startTCPDeployment(t, 2)

	pub, err := dynamoth.Connect(dynamoth.Config{Addrs: d.addrs, NodeID: 503})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	for i := 0; i < 200; i++ {
		if err := pub.Publish(fmt.Sprintf("flush-%d", i%8), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(5 * time.Second); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var acked uint64
	for _, node := range d.nodes {
		acked += node.Broker.Stats().Published
	}
	if acked < 200 {
		t.Fatalf("after Flush the brokers have %d publishes, want >= 200", acked)
	}

	pub.Close()
	if err := pub.Flush(time.Second); err != dynamoth.ErrClosed {
		t.Fatalf("flush on closed client: %v, want ErrClosed", err)
	}
}

func TestTCPDeploymentMigrationUnderTraffic(t *testing.T) {
	d := startTCPDeployment(t, 2)

	sub, err := dynamoth.Connect(dynamoth.Config{Addrs: d.addrs, NodeID: 601})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := dynamoth.Connect(dynamoth.Config{Addrs: d.addrs, NodeID: 602})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	msgs, err := sub.Subscribe("moving")
	if err != nil {
		t.Fatal(err)
	}
	// Warm up the subscription.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if err := pub.Publish("moving", []byte("warm")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-msgs:
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("warmup failed")
			}
			continue
		}
		break
	}

	// Move the channel to the other server through the dispatchers' plan
	// channel, exactly as the LB does, then keep publishing across the
	// migration.
	current := d.orch.Plan()
	home := current.Home("moving")
	target := d.ids[0]
	if home == target {
		target = d.ids[1]
	}
	next := current.Clone()
	next.Version = current.Version + 1
	next.Set("moving", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{target}})
	data, err := next.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env := &message.Envelope{Type: message.TypePlan, ID: message.ID{Node: 9, Seq: 1}, Payload: data}
	conn, err := d.dialer.Dial(home, tcpReportHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, id := range d.ids {
		c2, err := d.dialer.Dial(id, tcpReportHandler{})
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.Publish(plan.PlanChannel, env.Marshal()); err != nil {
			t.Fatal(err)
		}
		c2.Close()
	}

	received := 0
	for i := 0; i < 20; i++ {
		if err := pub.Publish("moving", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		select {
		case <-msgs:
			received++
		case <-time.After(500 * time.Millisecond):
		}
	}
	if received < 18 { // tolerate in-flight raggedness at the edges
		t.Fatalf("received %d of 20 across migration", received)
	}
	// The subscriber converged onto the new server.
	deadline = time.Now().Add(3 * time.Second)
	for d.nodes[home].Broker.Subscribers("moving") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never left the old server")
		}
		if err := pub.Publish("moving", []byte("nudge")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-msgs:
		case <-time.After(100 * time.Millisecond):
		}
	}
}
