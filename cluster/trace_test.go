package cluster

import (
	"fmt"
	"testing"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/server"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// TestClusterPlanVersionConvergence crashes one broker and asserts the
// repaired plan actually lands everywhere: every surviving node's /statusz
// document reports the orchestrator's plan version (and a server list that no
// longer contains the dead broker) once the push settles.
func TestClusterPlanVersionConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 3,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		TWait:          time.Hour, // isolate the repair path from rebalancing
		ReportEvery:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if err := c.Crash("pub3"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for c.Failures() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("failure never detected: failures=%d", c.Failures())
		}
		time.Sleep(20 * time.Millisecond)
	}

	want := c.orch.Plan().Version
	if want < 2 {
		t.Fatalf("orchestrator plan version=%d after repair, want >= 2", want)
	}
	for time.Now().Before(deadline) {
		if st, lagging := nodeStatuses(c, want); lagging == "" {
			for _, s := range st {
				for _, srv := range s.PlanServers {
					if srv == "pub3" {
						t.Fatalf("node %s still lists dead server: %v", s.Server, s.PlanServers)
					}
				}
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, lagging := nodeStatuses(c, want)
	t.Fatalf("node %s never converged to plan version %d", lagging, want)
}

// nodeStatuses snapshots every live node's Status and returns the ID of the
// first node (if any) whose reported plan version lags want.
func nodeStatuses(c *Cluster, want uint64) ([]server.Status, string) {
	c.mu.Lock()
	nodes := make([]*server.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	out := make([]server.Status, 0, len(nodes))
	for _, n := range nodes {
		st := n.Status().(server.Status)
		out = append(out, st)
		if st.PlanVersion != want {
			return out, st.Server
		}
	}
	return out, ""
}

// TestChaosRepairTimeline is the flight recorder's end-to-end contract: a
// broker crash must leave a complete, internally consistent repair timeline
// behind — detection with evidence, the repair span, the plan push and apply
// on every survivor, and the client-side failover migration — with monotone
// timestamps and a suppressed-duplicates total that matches what the clients
// themselves counted.
func TestChaosRepairTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 3,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		TWait:          time.Hour,
		ReportEvery:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub, err := c.NewClient(dynamoth.Config{NodeID: 900, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{NodeID: 901, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Subscribe to a channel homed on the broker we are about to kill, so the
	// crash forces a client-side failover migration.
	p := plan.New("pub1", "pub2", "pub3")
	victim := ""
	for i := 0; victim == "" && i < 1000; i++ {
		ch := fmt.Sprintf("arena-%d", i)
		if p.Home(ch) == "pub3" {
			victim = ch
		}
	}
	if victim == "" {
		t.Fatal("no channel hashes to pub3")
	}
	msgs, err := sub.Subscribe(victim)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Crash("pub3"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for c.Failures() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("failure never detected: failures=%d", c.Failures())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Prove the client recovered: a post-repair publish must arrive, which
	// requires the subscription to have been re-homed (the migrate event the
	// timeline assertion below depends on).
	go func() {
		for i := 0; ; i++ {
			if err := pub.Publish(victim, []byte("post-repair")); err == nil && i >= 3 {
				return // a few extra sends ride out the failover race
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	select {
	case <-msgs:
	case <-time.After(15 * time.Second):
		t.Fatal("post-repair publication never delivered")
	}

	// Closing the clients flushes their open dedup windows into the recorder,
	// so the timeline's Suppressed total is complete.
	wantSuppressed := int64(sub.Stats().DuplicatesSuppressed + pub.Stats().DuplicatesSuppressed)
	sub.Close()
	pub.Close()

	timelines := c.Timelines()
	var repair *trace.Rebalance
	for i := range timelines {
		if timelines[i].Kind == "repair" {
			repair = &timelines[i]
		}
	}
	if repair == nil {
		t.Fatalf("no repair timeline; got %+v", timelines)
	}

	// Every phase of the lifecycle must be present.
	for _, name := range []string{"detect", "repair", "plan_push", "plan_apply", "migrate"} {
		if repair.Phase(name) == nil {
			t.Errorf("repair timeline missing %q phase: %+v", name, repair.Phases)
		}
	}
	if det := repair.Phase("detect"); det != nil {
		if len(det.Subjects) == 0 || det.Subjects[0] != "pub3" {
			t.Errorf("detect phase subjects=%v, want [pub3]", det.Subjects)
		}
	}
	if push := repair.Phase("plan_push"); push != nil && push.Count < 2 {
		t.Errorf("plan_push count=%d, want one per surviving node (>= 2)", push.Count)
	}

	// Timestamps must be monotone: the timeline bounds hold every phase, and
	// phases are ordered by start.
	if repair.Start <= 0 || repair.End < repair.Start {
		t.Fatalf("timeline bounds not monotone: start=%d end=%d", repair.Start, repair.End)
	}
	prev := repair.Start
	for _, ph := range repair.Phases {
		if ph.Start < repair.Start || ph.End > repair.End || ph.End < ph.Start {
			t.Errorf("phase %s [%d,%d] escapes timeline [%d,%d]",
				ph.Name, ph.Start, ph.End, repair.Start, repair.End)
		}
		if ph.Start < prev {
			t.Errorf("phase %s starts before its predecessor", ph.Name)
		}
		prev = ph.Start
	}

	// The timeline's suppressed total must equal the clients' own counters —
	// the dedup windows and the Stats counter are two views of one event.
	var total int64
	for _, rb := range timelines {
		total += rb.Suppressed
	}
	if total != wantSuppressed {
		t.Errorf("timeline suppressed=%d, client counters=%d", total, wantSuppressed)
	}
}

// TestDedupWindowEvictionReplayInterop pins the Σ dedup_close ==
// DuplicatesSuppressed invariant against the replay machinery under window
// eviction pressure: with DedupWindowCap 1, every migration in a rebalance
// evicts the previous channel's window (flushed by OnEvict), and replayed
// duplicates arriving after their channel's window is gone must be counted
// in neither view — not silently added to DuplicatesSuppressed without a
// window to flush them, and not double-flushed when the window is later
// reopened. The two sums must stay equal through evictions, expiries, and
// the close-time flush.
func TestDedupWindowEvictionReplayInterop(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 1,
		MaxServers:     4,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		MaxOutgoingBps: 4000,
		TWait:          3 * time.Second,
		BootDelay:      2 * time.Second,
		ReportEvery:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const channels = 6
	sub, err := c.NewClient(dynamoth.Config{NodeID: 950, Clock: clk, DedupWindowCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < channels; i++ {
		msgs, err := sub.Subscribe(fmt.Sprintf("evict-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		go func(msgs <-chan dynamoth.Message) {
			for range msgs { // drain; delivery counts are not this test's concern
			}
		}(msgs)
	}
	pub, err := c.NewClient(dynamoth.Config{NodeID: 951, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Enough sustained load to trigger a scale-up rebalance, so several
	// channels migrate (each opening a window that evicts its predecessor)
	// while replay resubscribes deliver overlap duplicates.
	stopLoad := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		payload := make([]byte, 120)
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			_ = pub.Publish(fmt.Sprintf("evict-%d", i%channels), payload)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for c.ActiveServers() < 2 || c.Rebalances() < 1 {
		if time.Now().After(deadline) {
			close(stopLoad)
			<-loadDone
			t.Fatalf("no rebalance: servers=%d rebalances=%d", c.ActiveServers(), c.Rebalances())
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)
	close(stopLoad)
	<-loadDone
	time.Sleep(500 * time.Millisecond) // let in-flight deliveries settle

	if sub.Stats().ReplayRequests == 0 {
		t.Fatal("no cursor resubscribes issued: the migration path did not exercise replay")
	}

	// Closing flushes every still-open window; after this the recorder holds
	// the complete suppressed history.
	sub.Close()
	pub.Close()
	wantSuppressed := int64(sub.Stats().DuplicatesSuppressed + pub.Stats().DuplicatesSuppressed)

	var total int64
	for _, rb := range c.Timelines() {
		total += rb.Suppressed
	}
	if total != wantSuppressed {
		t.Errorf("timeline suppressed=%d, client counters=%d (windows lost or double-counted across eviction)",
			total, wantSuppressed)
	}
	st := sub.Stats()
	t.Logf("duplicates=%d suppressed=%d replayRequests=%d replayed=%d",
		st.Duplicates, st.DuplicatesSuppressed, st.ReplayRequests, st.ReplayedFrames)
}
