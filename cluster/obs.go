package cluster

import (
	"fmt"

	"github.com/dynamoth/dynamoth/internal/metrics"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/server"
)

// Node returns the running node with the given ID (nil if not running).
// Exposed for observability: tests and experiments scrape a node's registry
// or read its end-to-end latency histogram directly.
func (c *Cluster) Node(id string) *server.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// ScrapeMetrics renders the named node's /metrics exposition, exactly as the
// admin endpoint would serve it.
func (c *Cluster) ScrapeMetrics(id string) (string, error) {
	n := c.Node(id)
	if n == nil {
		return "", fmt.Errorf("cluster: no node %s", id)
	}
	return n.Registry().String(), nil
}

// NodeStatus returns the named node's /statusz document (a server.Status).
func (c *Cluster) NodeStatus(id string) (any, error) {
	n := c.Node(id)
	if n == nil {
		return nil, fmt.Errorf("cluster: no node %s", id)
	}
	return n.Status(), nil
}

// E2ELatency returns the named node's publish→deliver latency histogram
// (nil if the node is not running).
func (c *Cluster) E2ELatency(id string) *metrics.Histogram {
	n := c.Node(id)
	if n == nil {
		return nil
	}
	return n.E2ELatency()
}

// Waterfall returns the named node's per-stage latency waterfall, exactly as
// its /debug/latency endpoint would serve it.
func (c *Cluster) Waterfall(id string) (server.Waterfall, error) {
	n := c.Node(id)
	if n == nil {
		return server.Waterfall{}, fmt.Errorf("cluster: no node %s", id)
	}
	return n.Waterfall(), nil
}

// BalancerRegistry returns the load balancer's metric registry (plan version,
// rebalance and failure counters, per-server utilization gauges), building it
// on first use. Returns nil when the cluster runs without a balancer.
func (c *Cluster) BalancerRegistry() *obs.Registry {
	if c.orch == nil {
		return nil
	}
	c.lbRegOnce.Do(func() {
		r := obs.NewRegistry()
		c.orch.RegisterMetrics(r)
		c.lbReg = r
	})
	return c.lbReg
}

// ScrapeBalancerMetrics renders the balancer's /metrics exposition.
func (c *Cluster) ScrapeBalancerMetrics() (string, error) {
	r := c.BalancerRegistry()
	if r == nil {
		return "", fmt.Errorf("cluster: no balancer running")
	}
	return r.String(), nil
}
