// Package cluster runs a complete Dynamoth deployment inside one process:
// a pool of pub/sub server nodes (broker + local load analyzer +
// dispatcher), the load balancer, and a simulated cloud provider that boots
// and releases nodes on the balancer's demand. It is the quickest way to use
// or study the full system — examples, integration tests and the live
// experiments are built on it.
//
//	c, err := cluster.Start(cluster.Options{InitialServers: 2})
//	defer c.Stop()
//	client, err := c.NewClient(dynamoth.Config{})
//
// Optional WAN latency injection reproduces the paper's testbed conditions
// (§V-B): client↔server legs sample a King-dataset-like distribution while
// server↔server forwarding stays on the cloud LAN.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/balancer"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/cloud"
	"github.com/dynamoth/dynamoth/internal/dispatcher"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/netsim"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/server"
	"github.com/dynamoth/dynamoth/internal/trace"
	"github.com/dynamoth/dynamoth/internal/transport"
)

// BalancerMode selects the load-balancing strategy.
type BalancerMode string

// Balancer modes.
const (
	// BalancerDynamoth runs the paper's hierarchical load balancer
	// (channel-level replication + system-level rebalancing + elasticity).
	BalancerDynamoth BalancerMode = "dynamoth"
	// BalancerConsistentHashing runs the baseline of Experiment 2.
	BalancerConsistentHashing BalancerMode = "consistent-hashing"
	// BalancerNone runs a fixed pool with no rebalancing.
	BalancerNone BalancerMode = "none"
)

// Options configures a cluster.
type Options struct {
	// InitialServers is the bootstrap pool size (default 1).
	InitialServers int
	// MaxServers caps elasticity (default 8, as in the paper).
	MaxServers int
	// Balancer selects the strategy (default BalancerDynamoth).
	Balancer BalancerMode
	// WANLatency injects sampled wide-area latency on the client↔server
	// path, as the paper's testbed did.
	WANLatency bool
	// MaxOutgoingBps is each server's egress capacity T_i
	// (default 1.25 MB/s, the DESIGN.md calibration).
	MaxOutgoingBps float64
	// Clock provides time; a scaled clock accelerates everything
	// coherently (default real).
	Clock clock.Clock
	// Seed seeds latency sampling (default 1).
	Seed int64
	// TWait overrides the minimum time between plans (default 10 s).
	TWait time.Duration
	// BootDelay overrides the cloud boot latency (default 10 s).
	BootDelay time.Duration
	// UnitInterval overrides the LLA time unit (default 1 s).
	UnitInterval time.Duration
	// ReportEvery overrides the LLA report interval (default 3 s).
	ReportEvery time.Duration
	// OutputBuffer overrides the broker per-session output buffer.
	OutputBuffer int
	// ReplayDepth overrides each broker's per-channel replay ring depth
	// (0 = server.DefaultReplayDepth, negative = replay disabled).
	ReplayDepth int
	// ReplayChannels bounds how many channels may hold a replay ring per
	// broker (0 = broker default, negative = unbounded).
	ReplayChannels int
	// DisableFailureDetection turns off the balancer's broker failure
	// detector and automatic plan repair (on by default whenever a
	// balancer runs; thresholds derive from ReportEvery — see DESIGN.md
	// §11).
	DisableFailureDetection bool
	// ReplaceFailedServers asks the cloud for a replacement node after
	// each failure evacuation (default: the pool just shrinks).
	ReplaceFailedServers bool
	// Logger receives structured logs from every component (balancer,
	// servers, clients), component-tagged. Nil discards.
	Logger *slog.Logger
	// TraceCapacity sizes the shared flight recorder's ring (<= 0 selects
	// trace.DefaultCapacity).
	TraceCapacity int
}

// Cluster is a running deployment.
type Cluster struct {
	opts Options
	clk  clock.Clock

	mu      sync.Mutex
	nodes   map[plan.ServerID]*server.Node
	watched map[plan.ServerID]*watcher
	nextNum uint32

	dialer *transport.MemDialer // client-facing (WAN latency if enabled)
	faults *netsim.Faults       // fault injection on the client↔server path
	// regionDelay models per-region WAN distance for the LLAs'
	// delivery-latency attribution (nil without WANLatency).
	regionDelay func(region string) time.Duration
	reports     chan *lla.Report
	orch        *balancer.Orchestrator
	provider    *cloud.Simulator
	rec         *trace.Recorder // shared flight recorder (every component appends)

	// lbReg is the balancer's scrape registry, built lazily by
	// BalancerRegistry (the orchestrator is optional).
	lbRegOnce sync.Once
	lbReg     *obs.Registry

	stopOnce sync.Once
}

// watcher holds the LB's report subscription on one node.
type watcher struct {
	sess interface{ Close() }
}

// Start boots a cluster.
func Start(opts Options) (*Cluster, error) {
	if opts.InitialServers <= 0 {
		opts.InitialServers = 1
	}
	if opts.MaxServers <= 0 {
		opts.MaxServers = 8
	}
	if opts.MaxServers < opts.InitialServers {
		opts.MaxServers = opts.InitialServers
	}
	if opts.Balancer == "" {
		opts.Balancer = BalancerDynamoth
	}
	if opts.MaxOutgoingBps <= 0 {
		opts.MaxOutgoingBps = 1.25e6
	}
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	c := &Cluster{
		opts:    opts,
		clk:     opts.Clock,
		nodes:   make(map[plan.ServerID]*server.Node),
		watched: make(map[plan.ServerID]*watcher),
		reports: make(chan *lla.Report, 256),
	}

	// One shared flight recorder for the whole deployment: every component
	// appends into the same ring, so the timeline view sees a rebalance
	// end-to-end (trigger on the balancer through migration on the clients).
	c.rec = trace.NewRecorder(opts.TraceCapacity)
	c.rec.SetNow(c.clk.Now)
	if opts.Logger != nil {
		c.rec.SetLogger(trace.Component(opts.Logger, "reconfig"))
	}

	c.faults = netsim.NewFaults(opts.Seed)
	var dialerOpts transport.MemDialerOptions
	if opts.WANLatency {
		dialerOpts = transport.MemDialerOptions{
			Latency: netsim.NewPathModel(),
			Clock:   opts.Clock,
			Seed:    opts.Seed,
			Class:   netsim.Client,
			Faults:  c.faults,
		}
		// Regions inherit the same King-like WAN model: each declared
		// subscriber region maps to a deterministic characteristic delay,
		// which the LLAs add when attributing delivery latency per region.
		c.regionDelay = netsim.RegionDelays(netsim.NewKingLike())
	} else {
		dialerOpts = transport.MemDialerOptions{Clock: opts.Clock, Faults: c.faults}
	}
	c.dialer = transport.NewMemDialer(nil, dialerOpts)

	// Bootstrap pool.
	names := make([]plan.ServerID, 0, opts.InitialServers)
	for i := 1; i <= opts.InitialServers; i++ {
		names = append(names, fmt.Sprintf("pub%d", i))
	}
	initial := plan.New(names...)
	initial.Version = 1
	for _, id := range names {
		if err := c.startNode(id, initial); err != nil {
			c.Stop()
			return nil, err
		}
	}

	c.provider = cloud.NewSimulator(cloud.Config{
		BootDelay:    opts.BootDelay,
		Clock:        opts.Clock,
		NamePrefix:   "pub-x",
		MaxInstances: 0,
	})

	// Load balancer.
	if opts.Balancer != BalancerNone {
		cfg := balancer.DefaultConfig()
		cfg.MaxServers = opts.MaxServers
		cfg.MinServers = opts.InitialServers
		if opts.TWait > 0 {
			cfg.TWait = opts.TWait
		}
		var gen balancer.PlanGenerator
		switch opts.Balancer {
		case BalancerConsistentHashing:
			gen = balancer.NewCHPlanner(cfg)
		default:
			pinned := func(s string) bool { return s == names[0] }
			gen = balancer.NewPlanner(cfg, plan.IsControlChannel, pinned, opts.MaxOutgoingBps)
		}
		orchOpts := balancer.OrchestratorOptions{
			Planner:       gen,
			Config:        cfg,
			Initial:       initial,
			Reports:       c.reports,
			PublishPlan:   c.publishPlan,
			Cloud:         clusterCloud{c},
			Clock:         opts.Clock,
			DefaultMaxBps: opts.MaxOutgoingBps,
			Recorder:      c.rec,
			Logger:        opts.Logger,
		}
		if !opts.DisableFailureDetection {
			reportEvery := opts.ReportEvery
			if reportEvery <= 0 {
				reportEvery = 3 * time.Second // the server.Options default
			}
			// Staleness threshold: a few missed report intervals. Probes run
			// at report cadence, so K=3 misses and staleness agree on the
			// detection window (~4×ReportEvery) for a hard crash.
			orchOpts.Detect = &lla.DetectorConfig{
				StaleAfter:  4 * reportEvery,
				ProbeMisses: 3,
			}
			orchOpts.Probe = c.probe
			orchOpts.ProbeInterval = reportEvery
			orchOpts.OnServerDead = func(id plan.ServerID) { c.teardownNode(id) }
			orchOpts.ReplaceFailed = opts.ReplaceFailedServers
		}
		c.orch = balancer.NewOrchestrator(orchOpts)
		go c.orch.Run()
	}
	return c, nil
}

// NewClient returns a Dynamoth client connected to the cluster. The zero
// Config is valid.
func (c *Cluster) NewClient(cfg dynamoth.Config) (*dynamoth.Client, error) {
	c.mu.Lock()
	var servers []string
	p := c.currentPlanLocked()
	servers = append(servers, p.RingServers...)
	c.mu.Unlock()
	if len(servers) == 0 {
		return nil, errors.New("cluster: no servers")
	}
	if cfg.Clock == nil {
		cfg.Clock = c.clk
	}
	if cfg.Recorder == nil {
		cfg.Recorder = c.rec
	}
	if cfg.Logger == nil {
		cfg.Logger = c.opts.Logger
	}
	return dynamoth.ConnectWithDialer(c.dialer, servers, cfg)
}

// Servers returns the IDs of the currently running nodes.
func (c *Cluster) Servers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	return out
}

// ActiveServers returns the number of running nodes.
func (c *Cluster) ActiveServers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// PlanVersion returns the current plan version (1 = bootstrap).
func (c *Cluster) PlanVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.currentPlanLocked().Version
}

// Rebalances returns the number of plan changes the balancer performed.
func (c *Cluster) Rebalances() int {
	if c.orch == nil {
		return 0
	}
	return c.orch.Rebalances()
}

// Recorder returns the cluster's shared flight recorder: every component
// (balancer, dispatchers, clients) appends reconfiguration events into it.
func (c *Cluster) Recorder() *trace.Recorder { return c.rec }

// Events returns the flight-recorder events with Seq > since still held in
// the ring, oldest first — the programmatic twin of /debug/events.
func (c *Cluster) Events(since uint64) []trace.Event {
	return c.rec.Events(since)
}

// Timelines groups the recorded events into per-rebalance phase timelines —
// the programmatic twin of /debug/rebalances.
func (c *Cluster) Timelines() []trace.Rebalance {
	return c.rec.Timelines()
}

// Failures returns how many servers the balancer's failure detector
// declared dead and evacuated from the plan.
func (c *Cluster) Failures() int {
	if c.orch == nil {
		return 0
	}
	return c.orch.Failures()
}

// Crash kills a node abruptly: its broker drops every connection with an
// error, the dialer forgets its endpoint, and the cloud instance stops
// billing. Unlike a graceful release, the balancer is not told — the
// failure detector has to notice and repair the plan.
func (c *Cluster) Crash(id string) error {
	if !c.teardownNode(id) {
		return fmt.Errorf("cluster: no node %s", id)
	}
	_ = c.provider.Crash(id) // bootstrap nodes are not provider instances
	return nil
}

// PartitionServer blackholes a node's endpoint: connections stay up while
// publishes, deliveries, and load reports silently vanish — the failure
// mode probes and report staleness exist to catch. Undo with HealServer.
func (c *Cluster) PartitionServer(id string) error {
	c.mu.Lock()
	_, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no node %s", id)
	}
	c.faults.Blackhole(id)
	_ = c.provider.Partition(id)
	return nil
}

// HealServer reconnects a partitioned node's endpoint.
func (c *Cluster) HealServer(id string) {
	c.faults.Heal(id)
	_ = c.provider.Heal(id)
}

// SetDropRate makes a fraction p (0..1) of packets to and from the node
// vanish, in both the publish and delivery direction.
func (c *Cluster) SetDropRate(id string, p float64) {
	c.faults.SetDropRate(id, p)
}

// InstanceHours returns cloud usage beyond the bootstrap pool.
func (c *Cluster) InstanceHours() float64 {
	if c.provider == nil {
		return 0
	}
	return c.provider.InstanceHours()
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		if c.orch != nil {
			c.orch.Stop()
		}
		c.mu.Lock()
		nodes := make([]*server.Node, 0, len(c.nodes))
		for _, n := range c.nodes {
			nodes = append(nodes, n)
		}
		c.nodes = make(map[plan.ServerID]*server.Node)
		for _, w := range c.watched {
			w.sess.Close()
		}
		c.watched = make(map[plan.ServerID]*watcher)
		c.mu.Unlock()
		for _, n := range nodes {
			n.Close()
		}
		c.dialer.Close()
	})
}

// ---------------------------------------------------------------------------
// internals

func (c *Cluster) currentPlanLocked() *plan.Plan {
	if c.orch != nil {
		return c.orch.Plan()
	}
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	p := plan.New(ids...)
	p.Version = 1
	return p
}

// teardownNode fences one node: endpoint removed from the dialer, the LB's
// report watch closed, the broker shut down (dropping every client session).
// Used by Crash and as the balancer's OnServerDead fence — idempotent, so a
// detected crash after an explicit Crash is a no-op.
func (c *Cluster) teardownNode(id plan.ServerID) bool {
	c.mu.Lock()
	n := c.nodes[id]
	delete(c.nodes, id)
	w := c.watched[id]
	delete(c.watched, id)
	c.mu.Unlock()
	c.dialer.RemoveServer(id)
	if w != nil {
		w.sess.Close()
	}
	if n != nil {
		n.Close()
	}
	return n != nil
}

// probe models the balancer's RESP PING with a deadline against one node.
// In-process there is no socket to time out on, so liveness is membership
// (the node still exists) plus reachability (its endpoint not blackholed).
func (c *Cluster) probe(id plan.ServerID) error {
	if c.faults.Blackholed(id) {
		return fmt.Errorf("cluster: probe %s: timeout (blackholed)", id)
	}
	c.mu.Lock()
	n := c.nodes[id]
	c.mu.Unlock()
	if n == nil {
		return fmt.Errorf("cluster: probe %s: connection refused", id)
	}
	return nil
}

// forward implements dispatcher forwarding across nodes (cloud LAN).
func (c *Cluster) forward(serverID plan.ServerID, channel string, payload []byte) error {
	c.mu.Lock()
	n := c.nodes[serverID]
	c.mu.Unlock()
	if n == nil {
		return fmt.Errorf("cluster: no node %s", serverID)
	}
	n.Broker.Publish(channel, payload)
	return nil
}

// startNode creates and registers one node, wiring the report collector.
func (c *Cluster) startNode(id plan.ServerID, initial *plan.Plan) error {
	c.mu.Lock()
	c.nextNum++
	num := 0xD000 + c.nextNum
	c.mu.Unlock()

	n, err := server.New(server.Options{
		ID:             id,
		NodeNum:        num,
		Initial:        initial.Clone(),
		Forwarder:      dispatcher.ForwarderFunc(c.forward),
		Clock:          c.clk,
		MaxOutgoingBps: c.opts.MaxOutgoingBps,
		Unit:           c.opts.UnitInterval,
		ReportEvery:    c.opts.ReportEvery,
		RegionDelay:    c.regionDelay,
		OutputBuffer:   c.opts.OutputBuffer,
		ReplayDepth:    c.opts.ReplayDepth,
		ReplayChannels: c.opts.ReplayChannels,
		PublishReports: true,
		Recorder:       c.rec,
		Logger:         c.opts.Logger,
	})
	if err != nil {
		return fmt.Errorf("cluster: starting node %s: %w", id, err)
	}

	// The LB's report subscription on this node's broker.
	sess, err := n.Broker.Connect("lb-collector", reportSink{c})
	if err != nil {
		n.Close()
		return err
	}
	if _, err := sess.Subscribe(plan.ReportChannel); err != nil {
		n.Close()
		return err
	}

	c.mu.Lock()
	c.nodes[id] = n
	c.watched[id] = &watcher{sess: sess}
	c.mu.Unlock()
	c.dialer.AddServer(id, n.Broker)
	return nil
}

// publishPlan distributes a plan to every node's dispatcher over the
// control plane.
func (c *Cluster) publishPlan(p *plan.Plan) {
	data, err := p.Marshal()
	if err != nil {
		return
	}
	env := &message.Envelope{
		Type:    message.TypePlan,
		ID:      message.ID{Node: 0xDB, Seq: p.Version},
		Channel: plan.PlanChannel,
		Payload: data,
	}
	payload := env.Marshal()
	c.mu.Lock()
	nodes := make([]*server.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		push := c.rec.StartSpan(trace.KindPlanPush, p.Version, string(n.ID))
		n.Broker.Publish(plan.PlanChannel, payload)
		push.End("", int64(len(nodes)))
	}
}

// reportSink feeds LLA reports from any node into the LB.
type reportSink struct{ c *Cluster }

// Deliver implements broker.Sink.
func (s reportSink) Deliver(_ string, payload []byte) {
	env, err := message.Unmarshal(payload)
	if err != nil || env.Type != message.TypeLoadReport {
		return
	}
	r, err := lla.UnmarshalReport(env.Payload)
	if err != nil {
		return
	}
	// The in-process report hop bypasses the dialer, so apply the partition
	// model here: a blackholed node's reports never reach the balancer.
	if s.c.faults.Blackholed(r.Server) {
		return
	}
	select {
	case s.c.reports <- r:
	default: // LB lagging; a newer report will follow
	}
}

// Closed implements broker.Sink.
func (reportSink) Closed(error) {}

// clusterCloud adapts the cluster to balancer.CloudProvider: spawning boots
// a cloud instance and then starts a full node on it.
type clusterCloud struct{ c *Cluster }

// Spawn implements balancer.CloudProvider.
func (cc clusterCloud) Spawn(ctx context.Context) (plan.ServerID, error) {
	id, err := cc.c.provider.Spawn(ctx)
	if err != nil {
		return "", err
	}
	var initial *plan.Plan
	if cc.c.orch != nil {
		initial = cc.c.orch.Plan()
	} else {
		cc.c.mu.Lock()
		initial = cc.c.currentPlanLocked()
		cc.c.mu.Unlock()
	}
	if err := cc.c.startNode(id, initial); err != nil {
		_ = cc.c.provider.Release(id)
		return "", err
	}
	return id, nil
}

// Release implements balancer.CloudProvider.
func (cc clusterCloud) Release(id plan.ServerID) error {
	cc.c.mu.Lock()
	n := cc.c.nodes[id]
	delete(cc.c.nodes, id)
	if w, ok := cc.c.watched[id]; ok {
		w.sess.Close()
		delete(cc.c.watched, id)
	}
	cc.c.mu.Unlock()
	cc.c.dialer.RemoveServer(id)
	if n != nil {
		n.Close()
	}
	return cc.c.provider.Release(id)
}
