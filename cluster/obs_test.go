package cluster

import (
	"strconv"
	"strings"
	"testing"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/clock"
	"github.com/dynamoth/dynamoth/internal/obs"
)

// extractSample pulls one sample value out of a rendered exposition, e.g.
// extractSample(out, `dynamoth_e2e_latency_seconds_quantile{quantile="0.99"}`).
func extractSample(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix+" "), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("exposition has no sample %q:\n%s", prefix, exposition)
	return 0
}

// TestClusterScrapeUnderLoad drives traffic through a cluster, scrapes the
// node exactly as the admin endpoint would, and cross-checks the exported
// p99 against the in-process histogram — the exposition must be valid and
// the two views must agree within one log bucket (~8%).
func TestClusterScrapeUnderLoad(t *testing.T) {
	c, err := Start(Options{InitialServers: 1, Balancer: BalancerNone})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub, err := c.NewClient(dynamoth.Config{NodeID: 1, SubscribeBuffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{NodeID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	msgs, err := sub.Subscribe("arena")
	if err != nil {
		t.Fatal(err)
	}
	const sent = 500
	for i := 0; i < sent; i++ {
		if err := pub.Publish("arena", []byte("tick")); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	timeout := time.After(5 * time.Second)
	for received < sent {
		select {
		case <-msgs:
			received++
		case <-timeout:
			t.Fatalf("received %d/%d", received, sent)
		}
	}

	out, err := c.ScrapeMetrics("pub1")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ValidateExposition(out)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	if fams["dynamoth_broker_published_total"] != "counter" ||
		fams["dynamoth_e2e_latency_seconds"] != "histogram" {
		t.Fatalf("families = %v", fams)
	}
	if got := extractSample(t, out, "dynamoth_broker_published_total"); got < sent {
		t.Errorf("published_total = %v, want >= %d", got, sent)
	}
	if got := extractSample(t, out, "dynamoth_plan_version"); got != 1 {
		t.Errorf("plan_version = %v, want 1", got)
	}

	// Bounded hot-state caches: every per-channel map on the node must be
	// scrapeable with its size and eviction counters.
	for fam, kind := range map[string]string{
		"dynamoth_node_hotstate_size":            "gauge",
		"dynamoth_node_hotstate_capacity":        "gauge",
		"dynamoth_node_hotstate_evictions_total": "counter",
	} {
		if fams[fam] != kind {
			t.Errorf("node hotstate family %s = %q, want %q", fam, fams[fam], kind)
		}
	}
	for _, cache := range []string{"lla_units", "lla_subscribers", "topk"} {
		prefix := `dynamoth_node_hotstate_capacity{cache="` + cache + `"}`
		if got := extractSample(t, out, prefix); got <= 0 {
			t.Errorf("cache %s unbounded on a default node (capacity %v)", cache, got)
		}
	}
	if got := extractSample(t, out, `dynamoth_node_hotstate_size{cache="topk"}`); got < 1 {
		t.Errorf("topk cache empty after %d publishes", sent)
	}

	// Exported p99 vs in-process Quantile(0.99): same histogram, so they
	// must agree within a bucket ratio (scrape races new observations).
	h := c.E2ELatency("pub1")
	if h == nil || h.Count() == 0 {
		t.Fatal("node e2e histogram empty")
	}
	exported := extractSample(t, out, `dynamoth_e2e_latency_seconds_quantile{quantile="0.99"}`)
	inProcess := h.Quantile(0.99).Seconds()
	if inProcess > 0 {
		ratio := exported / inProcess
		if ratio < 0.9 || ratio > 1.12 {
			t.Errorf("exported p99 %v vs in-process %v (ratio %v), want within one bucket", exported, inProcess, ratio)
		}
	}

	// The client measures the full publish→deliver path too.
	if sub.E2ELatency().Count() == 0 {
		t.Error("client e2e histogram empty")
	}
}

// TestClusterRegionAttribution drives region-tagged deliveries end to end:
// a subscriber declaring Region must show up in the node's waterfall, ride
// the LLA report path into the balancer's state, and render on the
// balancer's scrape — the full attribution chain the balancer consumes.
func TestClusterRegionAttribution(t *testing.T) {
	c, err := Start(Options{
		InitialServers: 1,
		Balancer:       BalancerDynamoth,
		UnitInterval:   100 * time.Millisecond,
		ReportEvery:    250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub, err := c.NewClient(dynamoth.Config{NodeID: 1, Region: "eu-west", SubscribeBuffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{NodeID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	msgs, err := sub.Subscribe("arena")
	if err != nil {
		t.Fatal(err)
	}
	const sent = 200
	for i := 0; i < sent; i++ {
		if err := pub.Publish("arena", []byte("tick")); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	timeout := time.After(5 * time.Second)
	for received < sent {
		select {
		case <-msgs:
			received++
		case <-timeout:
			t.Fatalf("received %d/%d", received, sent)
		}
	}

	// Node view: the waterfall's cumulative region digest must carry the tag.
	wf, err := c.Waterfall("pub1")
	if err != nil {
		t.Fatal(err)
	}
	foundNode := false
	for _, rs := range wf.Regions {
		if rs.Region == "eu-west" && rs.Count > 0 {
			foundNode = true
		}
	}
	if !foundNode {
		t.Fatalf("node waterfall regions = %+v, want eu-west", wf.Regions)
	}

	// Balancer view: the tag must survive the report path into the
	// orchestrator's aggregated state (reports flow every ReportEvery).
	deadline := time.Now().Add(10 * time.Second)
	for {
		regions := c.orch.RegionLatencies()
		if rs := regions["pub1"]; len(rs) > 0 && rs[0].Region == "eu-west" && rs[0].Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("balancer never saw region stats: %+v", regions)
		}
		time.Sleep(50 * time.Millisecond)
	}
	merged := c.orch.MergedRegionLatencies()
	if len(merged) == 0 || merged[0].Region != "eu-west" {
		t.Fatalf("merged regions = %+v", merged)
	}

	out, err := c.ScrapeBalancerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateExposition(out); err != nil {
		t.Fatalf("balancer exposition invalid: %v\n%s", err, out)
	}
	if !strings.Contains(out, `dynamoth_region_delivery_latency_p99_seconds{region="eu-west"}`) {
		t.Errorf("balancer exposition missing region p99 gauge:\n%s", out)
	}
	if !strings.Contains(out, "dynamoth_build_info{") {
		t.Errorf("balancer exposition missing build info:\n%s", out)
	}
}

// TestClusterStageWaterfallCrossCheck validates the per-stage decomposition
// against the end-to-end measurement on both sides of the wire, under a
// WAN-latency model so every leg sits well above the histogram floors:
//
//   - node side, the ingress+fanout p99 sum must land within one histogram
//     bucket of the broker-observed e2e p99 (they decompose it exactly per
//     observation);
//   - client side, the three stage means must sum to the e2e mean almost
//     exactly (one clock read per delivery, µs truncation only).
func TestClusterStageWaterfallCrossCheck(t *testing.T) {
	clk := clock.NewScaled(epoch, 50)
	c, err := Start(Options{InitialServers: 1, Balancer: BalancerNone, WANLatency: true, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub, err := c.NewClient(dynamoth.Config{NodeID: 1, SubscribeBuffer: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{NodeID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	msgs, err := sub.Subscribe("arena")
	if err != nil {
		t.Fatal(err)
	}
	const sent = 600
	for i := 0; i < sent; i++ {
		if err := pub.Publish("arena", []byte("tick")); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	timeout := time.After(20 * time.Second)
	for received < sent {
		select {
		case <-msgs:
			received++
		case <-timeout:
			t.Fatalf("received %d/%d", received, sent)
		}
	}

	// Node side.
	wf, err := c.Waterfall("pub1")
	if err != nil {
		t.Fatal(err)
	}
	if wf.E2E.Count == 0 {
		t.Fatal("node e2e summary empty")
	}
	stages := map[string]serverStage{}
	for _, st := range wf.Stages {
		stages[st.Stage] = serverStage{count: st.Count, p99ms: st.P99ms}
	}
	for _, name := range []string{"ingress", "fanout"} {
		if stages[name].count == 0 {
			t.Fatalf("stage %s unobserved: %+v", name, wf.Stages)
		}
	}
	if stages["flush"].count == 0 {
		t.Errorf("flush stage unobserved after %d deliveries (1/16 sampling)", sent)
	}
	sum := stages["ingress"].p99ms + stages["fanout"].p99ms
	if hi := wf.E2E.P99ms*1.09 + 1; sum > hi {
		t.Errorf("stage p99 sum %.3fms exceeds e2e p99 %.3fms by more than one bucket", sum, wf.E2E.P99ms)
	}
	if lo := wf.E2E.P99ms * 0.7; sum < lo {
		t.Errorf("stage p99 sum %.3fms implausibly below e2e p99 %.3fms", sum, wf.E2E.P99ms)
	}

	// Client side: exact per-delivery decomposition, so means must agree.
	ing, fan, del := sub.StageLatencies()
	e2e := sub.E2ELatency()
	if ing.Count() == 0 || fan.Count() == 0 || del.Count() == 0 {
		t.Fatalf("client stage counts: ingress=%d fanout=%d deliver=%d", ing.Count(), fan.Count(), del.Count())
	}
	sumMean := ing.Mean() + fan.Mean() + del.Mean()
	e2eMean := e2e.Mean()
	diff := sumMean - e2eMean
	if diff < 0 {
		diff = -diff
	}
	if tol := e2eMean/50 + 20*time.Microsecond; diff > tol {
		t.Errorf("client stage means %v (i %v + f %v + d %v) vs e2e mean %v: diff %v > tol %v",
			sumMean, ing.Mean(), fan.Mean(), del.Mean(), e2eMean, diff, tol)
	}
	if sub.SkewClamped() != 0 {
		t.Errorf("skew clamped %d on a single-clock deployment", sub.SkewClamped())
	}
}

type serverStage struct {
	count uint64
	p99ms float64
}

// TestClusterBalancerScrape checks the balancer-side registry renders the
// plan/rebalance families when a balancer runs, and that scraping without a
// balancer fails cleanly.
func TestClusterBalancerScrape(t *testing.T) {
	c, err := Start(Options{InitialServers: 2, Balancer: BalancerDynamoth})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	out, err := c.ScrapeBalancerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateExposition(out); err != nil {
		t.Fatalf("balancer exposition invalid: %v\n%s", err, out)
	}
	for _, fam := range []string{
		"dynamoth_plan_version",
		"dynamoth_plan_servers 2",
		"dynamoth_rebalances_total",
		"dynamoth_failures_total",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("balancer exposition missing %q:\n%s", fam, out)
		}
	}

	none, err := Start(Options{InitialServers: 1, Balancer: BalancerNone})
	if err != nil {
		t.Fatal(err)
	}
	defer none.Stop()
	if _, err := none.ScrapeBalancerMetrics(); err == nil {
		t.Error("ScrapeBalancerMetrics succeeded without a balancer")
	}
	if none.BalancerRegistry() != nil {
		t.Error("BalancerRegistry non-nil without a balancer")
	}
}
