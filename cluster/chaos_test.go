package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/clock"
)

// TestChaosBrokerCrashMidPublishStorm kills one of four brokers in the
// middle of a 50-channel publish storm and asserts the deterministic
// recovery contract: the failure detector repairs the plan within a bounded
// window, every subscription survives on the remaining brokers, every
// post-repair publish is delivered, and nothing is delivered twice.
func TestChaosBrokerCrashMidPublishStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 4,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		Seed:           7,
		TWait:          5 * time.Second,
		ReportEvery:    time.Second, // detection window ≈ 4 s virtual
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const channels = 50
	chName := func(i int) string { return fmt.Sprintf("storm-%d", i) }

	sub, err := c.NewClient(dynamoth.Config{NodeID: 1000, Clock: clk, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{NodeID: 1001, Clock: clk, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Drain every subscription into a shared payload→count map.
	var recvMu sync.Mutex
	received := make(map[string]int)
	var drainers sync.WaitGroup
	for i := 0; i < channels; i++ {
		msgs, err := sub.Subscribe(chName(i))
		if err != nil {
			t.Fatal(err)
		}
		drainers.Add(1)
		go func(msgs <-chan dynamoth.Message) {
			defer drainers.Done()
			for m := range msgs {
				recvMu.Lock()
				received[string(m.Payload)]++
				recvMu.Unlock()
			}
		}(msgs)
	}

	// Publish storm across all channels while the broker dies.
	stopStorm := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		i := 0
		for {
			select {
			case <-stopStorm:
				return
			default:
			}
			_ = pub.Publish(chName(i%channels), []byte(fmt.Sprintf("storm-%d", i)))
			i++
			time.Sleep(time.Millisecond)
		}
	}()

	// Let the storm run, then kill a non-pinned broker abruptly.
	time.Sleep(300 * time.Millisecond)
	if err := c.Crash("pub3"); err != nil {
		t.Fatal(err)
	}

	// Bounded recovery window: detection (~4 s virtual = 400 ms real at
	// ×10) plus repair must complete well within the deadline.
	deadline := time.Now().Add(15 * time.Second)
	for c.Failures() < 1 {
		if time.Now().After(deadline) {
			close(stopStorm)
			<-stormDone
			t.Fatalf("failure never detected: failures=%d servers=%d", c.Failures(), c.ActiveServers())
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stopStorm)
	<-stormDone

	if got := c.ActiveServers(); got != 3 {
		t.Fatalf("ActiveServers=%d after crash, want 3", got)
	}
	if v := c.PlanVersion(); v < 2 {
		t.Fatalf("plan not repaired: version=%d", v)
	}

	// Post-repair: every channel must deliver again. Give the client-side
	// repair a moment to settle, then publish one unique final message per
	// channel and require exactly-once delivery of each.
	time.Sleep(500 * time.Millisecond)
	finals := make(map[string]bool, channels)
	for i := 0; i < channels; i++ {
		payload := fmt.Sprintf("final-%d", i)
		finals[payload] = true
		// Retry: a publish can race the first post-crash dial.
		var perr error
		for attempt := 0; attempt < 50; attempt++ {
			if perr = pub.Publish(chName(i), []byte(payload)); perr == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if perr != nil {
			t.Fatalf("post-repair publish on %s: %v", chName(i), perr)
		}
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		recvMu.Lock()
		gotAll := true
		for payload := range finals {
			if received[payload] == 0 {
				gotAll = false
				break
			}
		}
		recvMu.Unlock()
		if gotAll {
			break
		}
		if time.Now().After(deadline) {
			recvMu.Lock()
			missing := 0
			for payload := range finals {
				if received[payload] == 0 {
					missing++
				}
			}
			recvMu.Unlock()
			t.Fatalf("%d/%d post-repair publishes undelivered", missing, channels)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Zero duplicate deliveries — storm and finals alike.
	recvMu.Lock()
	for payload, n := range received {
		if n > 1 {
			recvMu.Unlock()
			t.Fatalf("payload %q delivered %d times", payload, n)
		}
	}
	recvMu.Unlock()

	// The publisher observed the crash and failed over: it either hit a
	// publish error or redialed; both are counted.
	s := pub.Stats()
	if s.DialFailures == 0 && s.Redials == 0 && sub.Stats().DialFailures == 0 && sub.Stats().Redials == 0 {
		t.Logf("note: no dial failures recorded (crash landed between publishes); stats pub=%+v sub=%+v", s, sub.Stats())
	}

	sub.Close()
	drainers.Wait()
}

// TestChaosPartitionDetectedBySilence blackholes a broker (connections stay
// up, packets vanish) and asserts the silent failure is still detected and
// evacuated — the signal crashes give for free (connection errors) is absent
// here, so only report staleness and probe timeouts can catch it.
func TestChaosPartitionDetectedBySilence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 2,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		TWait:          time.Hour, // isolate the repair path from rebalancing
		ReportEvery:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if err := c.PartitionServer("pub2"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for c.Failures() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("silent partition never detected: failures=%d", c.Failures())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := c.ActiveServers(); got != 1 {
		t.Fatalf("ActiveServers=%d, want 1 after fencing", got)
	}
}

// TestChaosCrashUnknownServer asserts the fault-injection API rejects
// unknown ids.
func TestChaosCrashUnknownServer(t *testing.T) {
	c, err := Start(Options{InitialServers: 1, Balancer: BalancerNone})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Crash("ghost"); err == nil {
		t.Fatal("crash of unknown server succeeded")
	}
	if err := c.PartitionServer("ghost"); err == nil {
		t.Fatal("partition of unknown server succeeded")
	}
}

// TestChaosReplacementSpawn crashes a broker with ReplaceFailedServers set
// and waits for the cloud to boot a substitute node.
func TestChaosReplacementSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers:       2,
		MaxServers:           4,
		Balancer:             BalancerDynamoth,
		Clock:                clk,
		TWait:                time.Hour,
		ReportEvery:          time.Second,
		BootDelay:            time.Second,
		ReplaceFailedServers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if err := c.Crash("pub2"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if c.Failures() >= 1 && c.ActiveServers() == 2 {
			break // crashed node fenced, replacement node running
		}
		if time.Now().After(deadline) {
			t.Fatalf("no replacement: failures=%d servers=%v", c.Failures(), c.Servers())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, id := range c.Servers() {
		if id == "pub2" {
			t.Fatalf("crashed server still listed: %v", c.Servers())
		}
	}
}
