package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/clock"
)

// TestChaosBrokerCrashMidPublishStorm kills one of four brokers in the
// middle of a 50-channel sequenced publish storm and asserts the zero-loss
// recovery contract: the failure detector repairs the plan within a bounded
// window, every subscription survives on the remaining brokers, and every
// accepted publish — including those racing the detection/repair window —
// is delivered exactly once (zero gaps, zero dupes). The storm pauses for
// the crash instant itself: a frame the dying broker accepted but had not
// yet fanned out needs publisher acknowledgments to recover, which is out
// of scope; the replay rings close the much larger failover window — frames
// published to a channel's new home before the subscriber's cursor
// resubscribe lands there.
func TestChaosBrokerCrashMidPublishStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 4,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		Seed:           7,
		TWait:          5 * time.Second,
		ReportEvery:    time.Second, // detection window ≈ 4 s virtual
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const channels = 50
	chName := func(i int) string { return fmt.Sprintf("storm-%d", i) }

	sub, err := c.NewClient(dynamoth.Config{NodeID: 1000, Clock: clk, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{NodeID: 1001, Clock: clk, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Drain every subscription into a shared payload→count map.
	var recvMu sync.Mutex
	received := make(map[string]int)
	var drainers sync.WaitGroup
	for i := 0; i < channels; i++ {
		msgs, err := sub.Subscribe(chName(i))
		if err != nil {
			t.Fatal(err)
		}
		drainers.Add(1)
		go func(msgs <-chan dynamoth.Message) {
			defer drainers.Done()
			for m := range msgs {
				recvMu.Lock()
				received[string(m.Payload)]++
				recvMu.Unlock()
			}
		}(msgs)
	}

	// Sequenced storm: every message is unique, every accepted publish is
	// recorded, and a publish that errors (dead home mid-failover) retries
	// until a live home accepts it — so the delivered set can be compared
	// against the accepted set exactly.
	var pubMu sync.Mutex
	published := make(map[string]bool)
	publishOne := func(i int) error {
		payload := fmt.Sprintf("storm-%d", i)
		deadline := time.Now().Add(20 * time.Second)
		for {
			if err := pub.Publish(chName(i%channels), []byte(payload)); err == nil {
				pubMu.Lock()
				published[payload] = true
				pubMu.Unlock()
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("publish %s never accepted", payload)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitDelivered := func(stage string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			pubMu.Lock()
			want := make([]string, 0, len(published))
			for p := range published {
				want = append(want, p)
			}
			pubMu.Unlock()
			missing := 0
			recvMu.Lock()
			for _, p := range want {
				if received[p] == 0 {
					missing++
				}
			}
			recvMu.Unlock()
			if missing == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: %d/%d accepted publishes undelivered", stage, missing, len(want))
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Phase 1: pre-crash storm across every channel, fully delivered before
	// the crash — each channel's seqTracker now has a baseline to resume
	// from, and no frame is in flight when the broker dies.
	const phase1, phase2 = 3 * channels, 3 * channels
	for i := 0; i < phase1; i++ {
		if err := publishOne(i); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	waitDelivered("pre-crash")

	// Kill a non-pinned broker abruptly, and resume the storm immediately —
	// phase 2 races the detection and repair windows: publishes to channels
	// homed on the dead broker fail and retry until the repaired plan gives
	// them a live home, and frames the new home accepts before the
	// subscriber's cursor resubscribe arrives must be replayed from its ring.
	if err := c.Crash("pub3"); err != nil {
		t.Fatal(err)
	}
	stormErr := make(chan error, 1)
	go func() {
		for i := phase1; i < phase1+phase2; i++ {
			if err := publishOne(i); err != nil {
				stormErr <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
		stormErr <- nil
	}()

	// Bounded recovery window: detection (~4 s virtual = 400 ms real at
	// ×10) plus repair must complete well within the deadline.
	deadline := time.Now().Add(15 * time.Second)
	for c.Failures() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("failure never detected: failures=%d servers=%d", c.Failures(), c.ActiveServers())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := <-stormErr; err != nil {
		t.Fatal(err)
	}

	if got := c.ActiveServers(); got != 3 {
		t.Fatalf("ActiveServers=%d after crash, want 3", got)
	}
	if v := c.PlanVersion(); v < 2 {
		t.Fatalf("plan not repaired: version=%d", v)
	}

	// Zero loss: every accepted publish — pre-crash and racing the repair —
	// delivered.
	waitDelivered("post-crash")

	// Exactly once: nothing delivered twice, nothing delivered that was
	// never accepted.
	recvMu.Lock()
	pubMu.Lock()
	for payload, n := range received {
		if n != 1 {
			t.Fatalf("payload %q delivered %d times", payload, n)
		}
		if !published[payload] {
			t.Fatalf("payload %q delivered but never accepted", payload)
		}
	}
	pubMu.Unlock()
	recvMu.Unlock()

	// Zero gaps: the cursor machinery owes nothing (every hole was replayed
	// or never existed), and with 256-deep rings against a handful of frames
	// per channel, no gap was ever declared unrecoverable.
	if gaps := sub.ReplayGaps(); gaps != 0 {
		t.Fatalf("ReplayGaps=%d at quiescence, want 0", gaps)
	}
	ss := sub.Stats()
	if ss.ReplayGapFrames != 0 {
		t.Fatalf("ReplayGapFrames=%d with rings deeper than the storm, want 0", ss.ReplayGapFrames)
	}
	// The failover path actually exercised cursors: the subscriber was
	// re-homed off the dead broker with per-channel resume state in hand.
	if ss.ReplayRequests == 0 {
		t.Fatalf("no cursor resubscribes issued across a broker crash; stats %+v", ss)
	}

	// The publisher observed the crash and failed over: it either hit a
	// publish error or redialed; both are counted.
	s := pub.Stats()
	if s.DialFailures == 0 && s.Redials == 0 && sub.Stats().DialFailures == 0 && sub.Stats().Redials == 0 {
		t.Logf("note: no dial failures recorded (crash landed between publishes); stats pub=%+v sub=%+v", s, sub.Stats())
	}

	sub.Close()
	drainers.Wait()
}

// TestChaosRebalanceDrainZeroLoss drives enough load through a one-broker
// cluster to trigger an elastic scale-up and asserts the T_wait rebalance
// drain loses nothing: every accepted publish is delivered exactly once to
// every subscriber across the SWITCH migration — the drain window where the
// old home forwards, the new home replays from its ring, and the client's
// dedup absorbs the overlap.
func TestChaosRebalanceDrainZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 1,
		MaxServers:     4,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		MaxOutgoingBps: 4000, // tiny virtual capacity so the storm overloads
		TWait:          3 * time.Second,
		BootDelay:      2 * time.Second,
		ReportEvery:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const channels = 6
	chName := func(i int) string { return fmt.Sprintf("room-%d", i) }

	// Two independent subscribers over every channel (doubling egress toward
	// the overload threshold); each must observe the full sequence exactly
	// once.
	var recvMu sync.Mutex
	receivedA := make(map[string]int)
	receivedB := make(map[string]int)
	var drainers sync.WaitGroup
	subs := make([]*dynamoth.Client, 0, 2)
	for si, counts := range []map[string]int{receivedA, receivedB} {
		sub, err := c.NewClient(dynamoth.Config{NodeID: uint32(2000 + si), Clock: clk, Seed: int64(si + 1)})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
		defer sub.Close()
		for i := 0; i < channels; i++ {
			msgs, err := sub.Subscribe(chName(i))
			if err != nil {
				t.Fatal(err)
			}
			drainers.Add(1)
			go func(msgs <-chan dynamoth.Message, counts map[string]int) {
				defer drainers.Done()
				for m := range msgs {
					recvMu.Lock()
					counts[string(m.Payload)]++
					recvMu.Unlock()
				}
			}(msgs, counts)
		}
	}
	pub, err := c.NewClient(dynamoth.Config{NodeID: 2002, Clock: clk, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Sequenced 120-byte payloads at 2 ms: ~60 kB/s real = 6 kB/s virtual at
	// ×10, comfortably past the 4 kB/s cap once doubled by fan-out.
	var pubMu sync.Mutex
	published := make(map[string]bool)
	stopLoad := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		pad := make([]byte, 120)
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				loadErr <- nil
				return
			default:
			}
			payload := fmt.Sprintf("drain-%05d", i)
			copy(pad, payload)
			for retry := 0; ; retry++ {
				if err := pub.Publish(chName(i%channels), pad); err == nil {
					break
				}
				if retry > 2000 {
					loadErr <- fmt.Errorf("publish %s never accepted", payload)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			pubMu.Lock()
			published[string(pad)] = true
			pubMu.Unlock()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Wait for the scale-up rebalance (spawn + T_wait drain + switch), then
	// keep the storm running through the post-switch window before stopping.
	deadline := time.Now().Add(30 * time.Second)
	for c.ActiveServers() < 2 || c.Rebalances() < 1 {
		if time.Now().After(deadline) {
			close(stopLoad)
			<-loadErr
			t.Fatalf("no rebalance: servers=%d rebalances=%d", c.ActiveServers(), c.Rebalances())
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)
	close(stopLoad)
	if err := <-loadErr; err != nil {
		t.Fatal(err)
	}

	// Zero loss across the drain: both subscribers converge on the full
	// accepted set.
	pubMu.Lock()
	want := make([]string, 0, len(published))
	for p := range published {
		want = append(want, p)
	}
	pubMu.Unlock()
	deadline = time.Now().Add(15 * time.Second)
	for {
		missing := 0
		recvMu.Lock()
		for _, p := range want {
			if receivedA[p] == 0 || receivedB[p] == 0 {
				missing++
			}
		}
		recvMu.Unlock()
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d/%d accepted publishes undelivered after rebalance", missing, len(want))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Exactly once, per subscriber.
	recvMu.Lock()
	for name, counts := range map[string]map[string]int{"A": receivedA, "B": receivedB} {
		for payload, n := range counts {
			if n != 1 {
				t.Fatalf("subscriber %s: payload %q delivered %d times", name, payload, n)
			}
		}
	}
	recvMu.Unlock()

	// Zero gaps, and the migration actually exercised cursor resubscribes.
	var replayRequests uint64
	for i, sub := range subs {
		if gaps := sub.ReplayGaps(); gaps != 0 {
			t.Fatalf("subscriber %d: ReplayGaps=%d at quiescence", i, gaps)
		}
		st := sub.Stats()
		if st.ReplayGapFrames != 0 {
			t.Fatalf("subscriber %d: ReplayGapFrames=%d across a drain, want 0", i, st.ReplayGapFrames)
		}
		replayRequests += st.ReplayRequests
	}
	if replayRequests == 0 {
		t.Fatal("no cursor resubscribes issued across a rebalance migration")
	}

	for _, sub := range subs {
		sub.Close()
	}
	drainers.Wait()
}

// TestChaosPartitionDetectedBySilence blackholes a broker (connections stay
// up, packets vanish) and asserts the silent failure is still detected and
// evacuated — the signal crashes give for free (connection errors) is absent
// here, so only report staleness and probe timeouts can catch it.
func TestChaosPartitionDetectedBySilence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 2,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		TWait:          time.Hour, // isolate the repair path from rebalancing
		ReportEvery:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if err := c.PartitionServer("pub2"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for c.Failures() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("silent partition never detected: failures=%d", c.Failures())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := c.ActiveServers(); got != 1 {
		t.Fatalf("ActiveServers=%d, want 1 after fencing", got)
	}
}

// TestChaosCrashUnknownServer asserts the fault-injection API rejects
// unknown ids.
func TestChaosCrashUnknownServer(t *testing.T) {
	c, err := Start(Options{InitialServers: 1, Balancer: BalancerNone})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Crash("ghost"); err == nil {
		t.Fatal("crash of unknown server succeeded")
	}
	if err := c.PartitionServer("ghost"); err == nil {
		t.Fatal("partition of unknown server succeeded")
	}
}

// TestChaosReplacementSpawn crashes a broker with ReplaceFailedServers set
// and waits for the cloud to boot a substitute node.
func TestChaosReplacementSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers:       2,
		MaxServers:           4,
		Balancer:             BalancerDynamoth,
		Clock:                clk,
		TWait:                time.Hour,
		ReportEvery:          time.Second,
		BootDelay:            time.Second,
		ReplaceFailedServers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if err := c.Crash("pub2"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if c.Failures() >= 1 && c.ActiveServers() == 2 {
			break // crashed node fenced, replacement node running
		}
		if time.Now().After(deadline) {
			t.Fatalf("no replacement: failures=%d servers=%v", c.Failures(), c.Servers())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, id := range c.Servers() {
		if id == "pub2" {
			t.Fatalf("crashed server still listed: %v", c.Servers())
		}
	}
}
