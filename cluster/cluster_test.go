package cluster

import (
	"fmt"
	"testing"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/clock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestClusterBasicPubSub(t *testing.T) {
	c, err := Start(Options{InitialServers: 2, Balancer: BalancerNone})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if got := c.ActiveServers(); got != 2 {
		t.Fatalf("ActiveServers=%d", got)
	}

	sub, err := c.NewClient(dynamoth.Config{NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := c.NewClient(dynamoth.Config{NodeID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	msgs, err := sub.Subscribe("lobby")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("lobby", []byte("welcome")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msgs:
		if string(m.Payload) != "welcome" {
			t.Fatalf("payload=%q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery through cluster")
	}
}

func TestClusterWANLatency(t *testing.T) {
	clk := clock.NewScaled(epoch, 50)
	c, err := Start(Options{InitialServers: 1, Balancer: BalancerNone, WANLatency: true, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := c.NewClient(dynamoth.Config{NodeID: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	msgs, err := cl.Subscribe("ping")
	if err != nil {
		t.Fatal(err)
	}
	// Round trip through a WAN-latency cluster should average ~75ms
	// virtual (paper Fig 5c steady state): two one-way samples of ~35ms.
	var total time.Duration
	const probes = 20
	for i := 0; i < probes; i++ {
		start := clk.Now()
		if err := cl.Publish("ping", []byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-msgs:
			total += clk.Since(start)
		case <-time.After(2 * time.Second):
			t.Fatal("no delivery")
		}
	}
	mean := total / probes
	if mean < 20*time.Millisecond || mean > 400*time.Millisecond {
		t.Fatalf("mean virtual RTT=%v, want WAN-ish (~75ms)", mean)
	}
}

func TestClusterElasticScaleUpAndDown(t *testing.T) {
	if testing.Short() {
		t.Skip("elasticity test is seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 1,
		MaxServers:     4,
		Balancer:       BalancerDynamoth,
		Clock:          clk,
		MaxOutgoingBps: 4000, // tiny virtual capacity so light load overloads
		TWait:          3 * time.Second,
		BootDelay:      2 * time.Second,
		ReportEvery:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Several subscribers per channel plus steady publishers: enough
	// virtual byte rate to exceed 4 kB/s (virtual) egress many times over.
	const channels = 6
	var clients []*dynamoth.Client
	for i := 0; i < channels; i++ {
		sub, err := c.NewClient(dynamoth.Config{NodeID: uint32(100 + i), Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, sub)
		for j := 0; j < 2; j++ {
			if _, err := sub.Subscribe(fmt.Sprintf("room-%d", (i+j)%channels)); err != nil {
				t.Fatal(err)
			}
		}
	}
	pub, err := c.NewClient(dynamoth.Config{NodeID: 99, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	clients = append(clients, pub)
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	stopLoad := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		payload := make([]byte, 120)
		i := 0
		for {
			select {
			case <-stopLoad:
				return
			default:
			}
			_ = pub.Publish(fmt.Sprintf("room-%d", i%channels), payload)
			i++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Scale-up: within a couple of virtual minutes a server is added.
	deadline := time.Now().Add(20 * time.Second)
	for c.ActiveServers() < 2 {
		if time.Now().After(deadline) {
			close(stopLoad)
			<-loadDone
			t.Fatalf("no scale-up: servers=%d rebalances=%d", c.ActiveServers(), c.Rebalances())
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stopLoad)
	<-loadDone

	// Scale-down: with the load gone, the pool shrinks back to 1.
	deadline = time.Now().Add(30 * time.Second)
	for c.ActiveServers() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no scale-down: servers=%d", c.ActiveServers())
		}
		time.Sleep(100 * time.Millisecond)
	}
	if c.Rebalances() < 2 {
		t.Fatalf("rebalances=%d, want several", c.Rebalances())
	}
}

func TestClusterDefaults(t *testing.T) {
	c, err := Start(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got := c.ActiveServers(); got != 1 {
		t.Fatalf("default pool=%d", got)
	}
	if v := c.PlanVersion(); v != 1 {
		t.Fatalf("plan version=%d", v)
	}
	if h := c.InstanceHours(); h != 0 {
		t.Fatalf("instance hours=%f", h)
	}
}

func TestClusterConsistentHashingModeSpawns(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long")
	}
	clk := clock.NewScaled(epoch, 10)
	c, err := Start(Options{
		InitialServers: 1,
		MaxServers:     3,
		Balancer:       BalancerConsistentHashing,
		Clock:          clk,
		MaxOutgoingBps: 4000,
		TWait:          3 * time.Second,
		BootDelay:      2 * time.Second,
		ReportEvery:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	subs := make([]*dynamoth.Client, 4)
	for i := range subs {
		subs[i], err = c.NewClient(dynamoth.Config{NodeID: uint32(300 + i), Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		defer subs[i].Close()
		if _, err := subs[i].Subscribe(fmt.Sprintf("room-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	pub, err := c.NewClient(dynamoth.Config{NodeID: 399, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload := make([]byte, 120)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = pub.Publish(fmt.Sprintf("room-%d", i%4), payload)
			i++
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer func() {
		close(stop)
		<-done
	}()

	deadline := time.Now().Add(20 * time.Second)
	for c.ActiveServers() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("CH baseline never spawned: servers=%d", c.ActiveServers())
		}
		time.Sleep(100 * time.Millisecond)
	}
}
