package dynamoth_test

import (
	"net"
	"strings"
	"testing"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/plan"
)

// startRawTCPBrokers runs n bare brokers behind real TCP listeners (no
// dispatcher layer) and returns their ID→address table plus handles for
// injecting traffic server-side.
func startRawTCPBrokers(t *testing.T, ids ...string) (map[string]string, map[string]*broker.Broker) {
	t.Helper()
	addrs := make(map[string]string, len(ids))
	brokers := make(map[string]*broker.Broker, len(ids))
	for _, id := range ids {
		b := broker.New(broker.Options{Name: id})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		served := make(chan struct{})
		go func() {
			defer close(served)
			broker.Serve(ln, b) //nolint:errcheck // ends on close
		}()
		t.Cleanup(func() {
			b.Close()
			ln.Close()
			<-served
		})
		addrs[id] = ln.Addr().String()
		brokers[id] = b
	}
	return addrs, brokers
}

// TestClientPipelineSwitchOverlapDedup reproduces the paper's exactly-once
// guarantee (§IV-3) on the pipelined TCP transport: during a switch window
// the client is subscribed on both the old and the new server, the same
// publication reaches it twice, and deduplication must deliver exactly one
// copy to the application.
func TestClientPipelineSwitchOverlapDedup(t *testing.T) {
	addrs, brokers := startRawTCPBrokers(t, "A", "B")

	c, err := dynamoth.Connect(dynamoth.Config{Addrs: addrs, NodeID: 701})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msgs, err := c.Subscribe("game")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the initial subscription to land on the channel's hash home.
	home := plan.New("A", "B").Home("game")
	waitSubscribers(t, brokers[home], "game", 1)

	// A switch notification replicates the channel across both servers
	// (all-subscribers): the client must subscribe on A and B, entering the
	// overlap window the dedup layer exists for.
	sw := &message.Envelope{
		Type:        message.TypeSwitch,
		ID:          message.ID{Node: 9, Seq: 1},
		Channel:     "game",
		Strategy:    uint8(plan.StrategyAllSubscribers),
		Servers:     []string{"A", "B"},
		PlanVersion: 2,
	}
	brokers[home].Publish("game", sw.Marshal())
	waitSubscribers(t, brokers["A"], "game", 1)
	waitSubscribers(t, brokers["B"], "game", 1)

	// The same publication (identical message ID) arrives via both servers —
	// what happens mid-switch when old and new servers both carry traffic.
	env := &message.Envelope{
		Type:    message.TypeData,
		ID:      message.ID{Node: 42, Seq: 7},
		Channel: "game",
		Payload: []byte("dup-payload"),
	}
	data := env.Marshal()
	brokers["A"].Publish("game", data)
	brokers["B"].Publish("game", data)

	got := 0
	timeout := time.After(2 * time.Second)
	for got == 0 {
		select {
		case m := <-msgs:
			if string(m.Payload) == "dup-payload" {
				got++
			}
		case <-timeout:
			t.Fatal("publication never delivered")
		}
	}
	// The duplicate must be suppressed, not merely late.
	quiet := time.After(300 * time.Millisecond)
	for {
		select {
		case m := <-msgs:
			if string(m.Payload) == "dup-payload" {
				t.Fatal("duplicate delivered during switch overlap")
			}
		case <-quiet:
			if d := c.Stats().Duplicates; d != 1 {
				t.Fatalf("Duplicates=%d, want 1", d)
			}
			// The switch opened a dedup window, so the duplicate is not just
			// dropped — it is accounted to the migration, both in Stats and in
			// the exported dynamoth_client_duplicates_suppressed_total family.
			if s := c.Stats().DuplicatesSuppressed; s != 1 {
				t.Fatalf("DuplicatesSuppressed=%d, want 1", s)
			}
			reg := obs.NewRegistry()
			c.RegisterMetrics(reg)
			if text := reg.String(); !strings.Contains(text, "dynamoth_client_duplicates_suppressed_total 1") {
				t.Fatalf("exposition missing suppressed counter:\n%s", text)
			}
			return
		}
	}
}

func waitSubscribers(t *testing.T, b *broker.Broker, channel string, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for b.Subscribers(channel) < want {
		if time.Now().After(deadline) {
			t.Fatalf("broker %v never saw %d subscribers on %s", b, want, channel)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
