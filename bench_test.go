// Benchmarks reproducing every table and figure of the paper's evaluation
// (§V) at a reduced, shape-preserving scale, plus microbenchmarks of the
// substrates on the hot path. Run the full-scale figures with
// cmd/experiments instead:
//
//	go test -bench=. -benchmem            # everything below
//	go run ./cmd/experiments -run all     # paper-scale reproduction
//
// Figure benches report their headline numbers as custom metrics
// (mean response time, max healthy clients, server counts), so the
// paper-vs-measured comparison of EXPERIMENTS.md can be regenerated from
// the bench output alone.
package dynamoth_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/cluster"
	"github.com/dynamoth/dynamoth/internal/balancer"
	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/experiment"
	"github.com/dynamoth/dynamoth/internal/hashring"
	"github.com/dynamoth/dynamoth/internal/localplan"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/resp"
	"github.com/dynamoth/dynamoth/internal/sim"
	"github.com/dynamoth/dynamoth/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 4a — Experiment 1 "All Publishers" (§V-C1): response time vs
// subscriber count, with and without all-publishers replication.

func BenchmarkFig4aAllPublishers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiment.RunFig4a(experiment.MicroOptions{
			Steps:   []int{100, 300, 500, 700},
			Measure: 10 * time.Second,
			Seed:    int64(i + 1),
		})
		if i == 0 {
			rtPlain, _ := res.Series.Get(700, "noRepl_ms")
			rtRepl, _ := res.Series.Get(700, "repl_ms")
			b.ReportMetric(rtPlain, "noRepl_ms@700subs")
			b.ReportMetric(rtRepl, "repl_ms@700subs")
			b.ReportMetric(float64(res.MaxHealthyNoRepl), "healthy_noRepl_subs")
			b.ReportMetric(float64(res.MaxHealthyRepl), "healthy_repl_subs")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 4b — Experiment 1 "All Subscribers" (§V-C2): response time and
// delivery vs publisher count, with and without all-subscribers replication.

func BenchmarkFig4bAllSubscribers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiment.RunFig4b(experiment.MicroOptions{
			Steps:   []int{100, 200, 400, 600},
			Measure: 10 * time.Second,
			Seed:    int64(i + 1),
		})
		if i == 0 {
			delivPlain, _ := res.Series.Get(400, "noRepl_delivery")
			delivRepl, _ := res.Series.Get(400, "repl_delivery")
			b.ReportMetric(delivPlain*100, "noRepl_delivery_pct@400pubs")
			b.ReportMetric(delivRepl*100, "repl_delivery_pct@400pubs")
			b.ReportMetric(float64(res.MaxHealthyNoRepl), "healthy_noRepl_pubs")
			b.ReportMetric(float64(res.MaxHealthyRepl), "healthy_repl_pubs")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 5 — Experiment 2 (§V-D): the scalability comparison. One bench per
// curve: Dynamoth and the consistent-hashing baseline, same workload.

func benchScalability(b *testing.B, mode sim.Mode) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiment.RunScalability(mode, 480, 400*time.Second, int64(i+1))
		if i == 0 {
			b.ReportMetric(float64(res.MaxHealthyPlayers), "healthy_players")
			b.ReportMetric(res.MeanRTms, "steady_rt_ms")
			b.ReportMetric(float64(res.PeakServers), "peak_servers")
			b.ReportMetric(float64(res.Rebalances), "rebalances")
		}
	}
}

func BenchmarkFig5ScalabilityDynamoth(b *testing.B) {
	benchScalability(b, sim.ModeDynamoth)
}

func BenchmarkFig5ScalabilityConsistentHashing(b *testing.B) {
	benchScalability(b, sim.ModeConsistentHashing)
}

// ---------------------------------------------------------------------------
// Figure 6 — Experiment 2's per-server load ratios for the Dynamoth run: the
// balancer must keep the average below 1 until global saturation.

func BenchmarkFig6LoadRatios(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiment.RunScalability(sim.ModeDynamoth, 480, 400*time.Second, int64(i+1))
		if i == 0 {
			// Average and busiest load ratio midway through the ramp
			// (while the system is healthy).
			avg, _ := res.Series.Get(200, "avgLR")
			max, _ := res.Series.Get(200, "maxLR")
			b.ReportMetric(avg, "avgLR_midrun")
			b.ReportMetric(max, "maxLR_midrun")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 7 — Experiment 3 (§V-E): elasticity under a rise/drop/rise wave.

func BenchmarkFig7Elasticity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiment.RunElasticity(400, 100, 300, 160*time.Second, int64(i+1))
		if i == 0 {
			b.ReportMetric(float64(res.PeakServers), "peak_servers")
			b.ReportMetric(float64(res.FinalServers), "final_servers")
			b.ReportMetric(res.MeanRTms, "steady_rt_ms")
			b.ReportMetric(float64(res.Rebalances), "rebalances")
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate microbenchmarks (the hot paths under every figure above).

func BenchmarkEnvelopeMarshal(b *testing.B) {
	env := &message.Envelope{
		Type:    message.TypeData,
		ID:      message.ID{Node: 7, Seq: 42},
		Channel: "tile-3-4",
		Payload: make([]byte, 200),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = env.Marshal()
	}
}

func BenchmarkEnvelopeUnmarshal(b *testing.B) {
	env := &message.Envelope{
		Type:    message.TypeData,
		ID:      message.ID{Node: 7, Seq: 42},
		Channel: "tile-3-4",
		Payload: make([]byte, 200),
	}
	data := env.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := message.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashringLookup(b *testing.B) {
	ring := hashring.New(128, "pub1", "pub2", "pub3", "pub4", "pub5", "pub6", "pub7", "pub8")
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("tile-%d-%d", i%16, i/16)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ring.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkPlanLookup(b *testing.B) {
	p := plan.New("pub1", "pub2", "pub3", "pub4")
	for i := 0; i < 32; i++ {
		p.Set(fmt.Sprintf("tile-%d", i), plan.Entry{
			Strategy: plan.StrategySingle,
			Servers:  []plan.ServerID{fmt.Sprintf("pub%d", i%4+1)},
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = p.Lookup(fmt.Sprintf("tile-%d", i%64))
	}
}

func BenchmarkDeduperObserve(b *testing.B) {
	d := message.NewDeduper(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(message.ID{Node: 1, Seq: uint64(i)})
	}
}

func BenchmarkBrokerFanOut(b *testing.B) {
	for _, subs := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			// Replay and stage stamping on (the cluster defaults): raw
			// payloads take the peek-and-skip path through both hooks, which
			// must stay allocation-free.
			br := broker.New(broker.Options{
				OutputBuffer: 1 << 16,
				ReplayDepth:  256,
				NowNanos:     func() int64 { return time.Now().UnixNano() },
			})
			defer br.Close()
			connect := func() {
				for br.Subscribers("bench") < subs {
					s, err := br.Connect("c", discardSink{})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.Subscribe("bench"); err != nil {
						b.Fatal(err)
					}
				}
			}
			connect()
			payload := make([]byte, 200)
			kills := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := br.Publish("bench", payload); got != subs {
					// A maximum-pressure publisher can outrun a consumer's
					// writer goroutine; the broker then kills the slow
					// consumer exactly like Redis. Reconnect and keep
					// measuring (the kill rate is reported).
					kills++
					connect()
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(kills)/float64(b.N)*100, "slow_consumer_kills_%")
			}
		})
	}
}

type discardSink struct{}

func (discardSink) Deliver(string, []byte) {}
func (discardSink) Closed(error)           {}

// BenchmarkBrokerPublishParallel measures concurrent publishes to disjoint
// channels — the case the sharded subscription registry exists for. Each
// worker cycles through its own slice of the channel space, so with lock
// striping publishers should (almost) never contend.
func BenchmarkBrokerPublishParallel(b *testing.B) {
	br := broker.New(broker.Options{
		OutputBuffer: 1 << 16,
		ReplayDepth:  256,
		NowNanos:     func() int64 { return time.Now().UnixNano() },
	})
	defer br.Close()
	const channels = 64
	names := make([]string, channels)
	for i := range names {
		names[i] = fmt.Sprintf("par-%d", i)
		s, err := br.Connect("c", discardSink{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Subscribe(names[i]); err != nil {
			b.Fatal(err)
		}
	}
	payload := make([]byte, 200)
	var workers atomic.Int64
	var misses atomic.Int64
	b.SetParallelism(4)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(workers.Add(1))
		for pb.Next() {
			if got := br.Publish(names[i%channels], payload); got != 1 {
				// A starved writer goroutine can be culled as a slow
				// consumer under maximum pressure; track it like
				// BenchmarkBrokerFanOut does rather than failing.
				misses.Add(1)
			}
			i++
		}
	})
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(misses.Load())/float64(b.N)*100, "missed_publishes_%")
	}
}

// BenchmarkBrokerPublishReplay isolates the replay retain path: stamped data
// envelopes published to a channel whose ring has wrapped, so every publish
// assigns a sequence, stamps the frame in place, and copies it into a reused
// ring slot. Steady state must be zero allocations per publish — the ring is
// on the hot path of every replay-enabled broker. (No subscribers: each
// published buffer is stamped in place and the bench reuses it, which a
// concurrent fan-out reader must never observe.) Stage stamping is on, so
// this is also the full staged-publish hot path: sequence + ingress/fanout
// marks + ring retain, all in place.
func BenchmarkBrokerPublishReplay(b *testing.B) {
	br := broker.New(broker.Options{
		OutputBuffer: 1 << 16,
		ReplayDepth:  256,
		NowNanos:     func() int64 { return time.Now().UnixNano() },
	})
	defer br.Close()
	env := &message.Envelope{
		Type:    message.TypeData,
		ID:      message.ID{Node: 7, Seq: 42},
		Channel: "bench",
		Payload: make([]byte, 200),
		Stamp:   time.Now().UnixNano(),
	}
	frame := env.Marshal()
	// Wrap the ring before the clock starts so the timed region measures
	// slot-buffer reuse, not first-lap growth.
	for i := 0; i < 512; i++ {
		br.Publish("bench", frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Publish("bench", frame)
	}
	b.StopTimer()
	if st := br.Stats(); st.ReplayRetained < uint64(b.N) {
		b.Fatalf("retained %d frames, want >= %d (replay path not exercised)", st.ReplayRetained, b.N)
	}
}

// BenchmarkTCPEndToEnd drives the full RESP path over loopback TCP: a
// pipelined publisher and subs subscriber connections, with every delivery
// read back off the wire before the clock stops. This is the syscall-bound
// path that writer coalescing is meant to amortize.
func BenchmarkTCPEndToEnd(b *testing.B) {
	for _, subs := range []int{1, 8} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			br := broker.New(broker.Options{OutputBuffer: 1 << 17})
			defer br.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			go broker.Serve(ln, br) //nolint:errcheck // returns on listener close
			addr := ln.Addr().String()

			var received atomic.Int64
			for i := 0; i < subs; i++ {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				w := resp.NewWriter(conn)
				r := resp.NewReader(conn)
				if err := w.WriteCommand([]byte("SUBSCRIBE"), []byte("bench")); err != nil {
					b.Fatal(err)
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
				if _, err := r.ReadValue(); err != nil { // subscribe ack
					b.Fatal(err)
				}
				go func() {
					for {
						if _, err := r.ReadValue(); err != nil {
							return
						}
						received.Add(1)
					}
				}()
			}

			pub, err := net.Dial("tcp", addr)
			if err != nil {
				b.Fatal(err)
			}
			defer pub.Close()
			pw := resp.NewWriter(pub)
			pr := resp.NewReader(pub)
			payload := make([]byte, 200)

			// Pipeline publishes in batches, and keep the publisher's lead
			// over the slowest subscriber bounded so nobody overflows their
			// output buffer and gets culled mid-benchmark.
			const pipeline = 64
			const maxLead = 16384
			waitFor := func(want int64) {
				deadline := time.Now().Add(30 * time.Second)
				for received.Load() < want {
					if time.Now().After(deadline) {
						b.Fatalf("stalled: received %d of %d deliveries", received.Load(), want)
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			published := 0
			for published < b.N {
				n := pipeline
				if rem := b.N - published; rem < n {
					n = rem
				}
				for j := 0; j < n; j++ {
					if err := pw.WriteCommand([]byte("PUBLISH"), []byte("bench"), payload); err != nil {
						b.Fatal(err)
					}
				}
				if err := pw.Flush(); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					v, err := pr.ReadValue()
					if err != nil {
						b.Fatal(err)
					}
					if v.Kind != resp.KindInteger || v.Int != int64(subs) {
						b.Fatalf("PUBLISH reply %+v, want %d receivers", v, subs)
					}
				}
				published += n
				if lead := published - int(received.Load())/subs; lead > maxLead {
					waitFor(int64(published-maxLead/2) * int64(subs))
				}
			}
			waitFor(int64(b.N) * int64(subs))
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(received.Load())/sec, "deliveries/s")
			}
		})
	}
}

func BenchmarkClientPublish(b *testing.B) {
	c, err := cluster.Start(cluster.Options{InitialServers: 2, Balancer: cluster.BalancerNone})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	client, err := c.NewClient(dynamoth.Config{NodeID: 42})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	payload := make([]byte, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Publish("bench", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientPublishThroughput measures the client's publish hot path
// over real TCP: routing-snapshot lookup, envelope encoding into a pooled
// buffer, and the pipelined PUBLISH write. The clock stops only once the
// broker has accepted every publication, so ops/s is true throughput rather
// than local buffer-stuffing speed. The goroutines=4 variant hammers one
// client from four publishers — the case the lock-free snapshot exists for.
func BenchmarkClientPublishThroughput(b *testing.B) {
	for _, gs := range []int{1, 4} {
		b.Run(fmt.Sprintf("goroutines=%d", gs), func(b *testing.B) {
			br := broker.New(broker.Options{OutputBuffer: 1 << 17})
			defer br.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			go broker.Serve(ln, br) //nolint:errcheck // returns on listener close

			client, err := dynamoth.Connect(dynamoth.Config{
				Addrs:  map[string]string{"pub1": ln.Addr().String()},
				NodeID: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			payload := make([]byte, 200)
			// Warm the route: dial the target and publish the snapshot.
			if err := client.Publish("bench", payload); err != nil {
				b.Fatal(err)
			}
			base := waitBrokerPublished(b, br, 1)

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				n := b.N / gs
				if g < b.N%gs {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if err := client.Publish("bench", payload); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
			waitBrokerPublished(b, br, base+uint64(b.N))
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "publishes/s")
			}
		})
	}
}

func waitBrokerPublished(b *testing.B, br *broker.Broker, want uint64) uint64 {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := br.Stats().Published
		if got >= want {
			return got
		}
		if time.Now().After(deadline) {
			b.Fatalf("stalled: broker accepted %d of %d publications", got, want)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// BenchmarkClientEndToEnd runs the full library round trip over loopback
// TCP: publisher client → RESP wire → broker fan-out → subscriber client →
// application channel. The publisher's lead is bounded so the subscriber's
// buffer never overflows; allocs/op covers both ends of the path.
func BenchmarkClientEndToEnd(b *testing.B) {
	br := broker.New(broker.Options{OutputBuffer: 1 << 17})
	defer br.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go broker.Serve(ln, br) //nolint:errcheck // returns on listener close
	addrs := map[string]string{"pub1": ln.Addr().String()}

	sub, err := dynamoth.Connect(dynamoth.Config{Addrs: addrs, NodeID: 43, SubscribeBuffer: 1 << 15})
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	msgs, err := sub.Subscribe("bench")
	if err != nil {
		b.Fatal(err)
	}
	pub, err := dynamoth.Connect(dynamoth.Config{Addrs: addrs, NodeID: 44})
	if err != nil {
		b.Fatal(err)
	}
	defer pub.Close()
	payload := make([]byte, 200)

	// Warm up until the subscription is live, then drain the warmup traffic
	// (every warmup publish is eventually delivered — the buffer is large).
	warm := 0
	for delivered := 0; delivered < warm || warm == 0; {
		if err := pub.Publish("bench", payload); err != nil {
			b.Fatal(err)
		}
		warm++
		select {
		case <-msgs:
			delivered++
			for delivered < warm {
				select {
				case <-msgs:
					delivered++
				case <-time.After(time.Second):
					b.Fatalf("warmup: %d of %d deliveries", delivered, warm)
				}
			}
		case <-time.After(100 * time.Millisecond):
			if warm > 50 {
				b.Fatal("subscription never became live")
			}
		}
	}

	var received atomic.Int64
	go func() {
		for range msgs {
			received.Add(1)
		}
	}()
	const maxLead = 8192
	waitFor := func(want int64) {
		deadline := time.Now().Add(30 * time.Second)
		for received.Load() < want {
			if time.Now().After(deadline) {
				b.Fatalf("stalled: received %d of %d deliveries", received.Load(), want)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench", payload); err != nil {
			b.Fatal(err)
		}
		if lead := int64(i+1) - received.Load(); lead > maxLead {
			waitFor(int64(i+1) - maxLead/2)
		}
	}
	waitFor(int64(b.N))
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(received.Load())/sec, "deliveries/s")
	}
}

func BenchmarkSimEventThroughput(b *testing.B) {
	// End-to-end simulator cost per published message (the currency every
	// figure above is paid in).
	s := sim.New(sim.Config{Mode: sim.ModeNone, Seed: 1})
	clients := make([]*sim.Client, 16)
	for i := range clients {
		clients[i] = s.AddClient(uint32(100 + i))
		clients[i].Subscribe(fmt.Sprintf("t-%d", i%4))
	}
	s.RunFor(2 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clients[i%16].PublishTimed(fmt.Sprintf("t-%d", i%4), 200)
		if i%1024 == 1023 {
			s.RunFor(5 * time.Second)
		}
	}
	s.RunFor(10 * time.Second)
}

func BenchmarkWorkloadAdvance(b *testing.B) {
	cfg := workload.Config{}.FillDefaults()
	rng := newBenchRand()
	p := workload.NewPlayer(1, cfg, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Advance(time.Duration(i)*333*time.Millisecond, 333*time.Millisecond, rng)
	}
}

func newBenchRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func BenchmarkRESPCommandRoundTrip(b *testing.B) {
	var buf bytes.Buffer
	w := resp.NewWriter(&buf)
	payload := make([]byte, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := w.WriteCommand([]byte("PUBLISH"), []byte("tile-3-4"), payload); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := resp.NewReader(&buf).ReadCommand(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalPlanLookup(b *testing.B) {
	store := localplan.New([]string{"pub1", "pub2", "pub3", "pub4"}, 0)
	now := time.Now()
	for i := 0; i < 32; i++ {
		store.Update(fmt.Sprintf("tile-%d", i), plan.Entry{
			Strategy: plan.StrategySingle,
			Servers:  []plan.ServerID{"pub2"},
		}, 5, now)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store.Lookup(fmt.Sprintf("tile-%d", i%64), now)
	}
}

func BenchmarkPlannerGeneratePlan(b *testing.B) {
	// One full two-step planning round over an 8-server, 64-channel state.
	cfg := balancer.DefaultConfig()
	cfg.MaxServers = 8
	servers := make([]string, 8)
	for i := range servers {
		servers[i] = fmt.Sprintf("pub%d", i+1)
	}
	current := plan.New(servers...)
	loads := make([]balancer.ServerLoad, len(servers))
	for i, id := range servers {
		loads[i] = balancer.ServerLoad{
			Server:   id,
			MaxBps:   1.25e6,
			Channels: map[string]balancer.ChannelLoad{},
		}
	}
	for c := 0; c < 64; c++ {
		name := fmt.Sprintf("tile-%d", c)
		idx := c % len(servers)
		out := 1e4 + float64(c)*3e3
		loads[idx].Channels[name] = balancer.ChannelLoad{
			Publications: 40, Subscribers: 15, BytesOut: out,
		}
		loads[idx].MeasuredBps += out
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl := balancer.NewPlanner(cfg, plan.IsControlChannel, nil, 1.25e6)
		_ = pl.GeneratePlan(current, loads)
	}
}
