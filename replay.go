package dynamoth

import (
	"sync"

	"github.com/dynamoth/dynamoth/internal/message"
)

// Client-side half of zero-loss reconfiguration (the broker half is the
// replay ring in internal/broker): every subscription carries a seqTracker
// that folds the (epoch, channelSeq) stamps brokers put on data frames into
// a resume cursor. When the subscription is re-homed — a SWITCH migration, a
// failover repair, a redial after a disconnect — the cursor is presented to
// the new home, which replays the frames the client is owed from its ring.
//
// An epoch names one ring incarnation on one broker; sequences are dense
// within it. The tracker keeps, per epoch, the highest contiguous sequence
// consumed plus a bounded set of out-of-order arrivals, so the cursor always
// claims exactly what was delivered: a hole left by a frame that never
// arrives stays visible (openGaps) until the broker either replays it or
// declares it unrecoverable (forgive).

const (
	// maxTrackedEpochs bounds the per-subscription epoch tracks. A
	// subscription sees a new epoch only when its channel lands on a new
	// broker (or a recreated ring), so a handful covers any realistic
	// failover chain; the oldest track is evicted beyond the bound.
	maxTrackedEpochs = 8
	// maxPendingSeqs bounds the out-of-order arrival set per epoch. Overflow
	// means ordering is pathologically scrambled (or sequences were forged);
	// the tracker then resets contiguity to the newest sequence rather than
	// growing without bound.
	maxPendingSeqs = 1024
)

// epochTrack is gap accounting for one ring incarnation.
type epochTrack struct {
	epoch  uint64
	contig uint64 // highest sequence with no holes below (within the observed baseline)
	// pending holds sequences above contig that have arrived; holes below
	// them are the channel's open gaps.
	pending map[uint64]struct{}
}

// drain advances contig through any pending sequences it now reaches.
func (t *epochTrack) drain() {
	for {
		if _, ok := t.pending[t.contig+1]; !ok {
			return
		}
		delete(t.pending, t.contig+1)
		t.contig++
	}
}

// seqTracker is one subscription's delivery-continuity state. It has its own
// mutex — observation happens on the lock-free delivery path, per channel.
type seqTracker struct {
	mu sync.Mutex
	// lastStamp is the newest publish stamp consumed: the cursor's
	// cross-epoch fallback (a broker whose ring epoch we have never seen
	// replays frames stamped at or after it).
	lastStamp int64
	// epochs is in arrival order; the current epoch is almost always last.
	epochs []*epochTrack
}

// observe folds one arrived frame into the tracker. It is called for
// delivered frames AND for dedup-suppressed duplicates: a forwarded copy
// re-stamped by another broker consumes that broker's (epoch, seq) even when
// its payload was already seen, otherwise the suppressed copy would leave a
// phantom hole in the new epoch's sequence.
func (s *seqTracker) observe(epoch, seq uint64, stamp int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if stamp > s.lastStamp {
		s.lastStamp = stamp
	}
	if epoch == 0 {
		return // unstamped: a broker without replay rings
	}
	t := s.track(epoch)
	if t == nil {
		// First frame of a new epoch baselines contiguity at its sequence:
		// earlier sequences were published before this subscription arrived
		// (or are replay overlap that will land below the baseline).
		t = &epochTrack{epoch: epoch, contig: seq}
		s.epochs = append(s.epochs, t)
		if len(s.epochs) > maxTrackedEpochs {
			s.epochs = s.epochs[1:]
		}
		return
	}
	switch {
	case seq <= t.contig:
		// Duplicate or below-baseline replay overlap.
	case seq == t.contig+1:
		t.contig = seq
		t.drain()
	default:
		if t.pending == nil {
			t.pending = make(map[uint64]struct{})
		}
		if len(t.pending) >= maxPendingSeqs {
			// Give up on precise accounting rather than grow without bound;
			// the end-to-end loss checks do not depend on this set.
			t.contig = seq
			for q := range t.pending {
				if q <= seq {
					delete(t.pending, q)
				}
			}
			t.drain()
			return
		}
		t.pending[seq] = struct{}{}
	}
}

// forgive records the broker's verdict that every frame of epoch up to and
// including upto is unrecoverable (overwritten in its ring): contiguity jumps
// over the hole so the next cursor does not ask for it again.
func (s *seqTracker) forgive(epoch, upto uint64) {
	if epoch == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.track(epoch)
	if t == nil {
		t = &epochTrack{epoch: epoch, contig: upto}
		s.epochs = append(s.epochs, t)
		if len(s.epochs) > maxTrackedEpochs {
			s.epochs = s.epochs[1:]
		}
		return
	}
	if upto > t.contig {
		t.contig = upto
		for q := range t.pending {
			if q <= upto {
				delete(t.pending, q)
			}
		}
		t.drain()
	}
}

func (s *seqTracker) track(epoch uint64) *epochTrack {
	for _, t := range s.epochs {
		if t.epoch == epoch {
			return t
		}
	}
	return nil
}

// cursor snapshots the tracker into a resume cursor plus the per-epoch
// contiguous sequence it claimed (the base the broker's missed count is
// relative to). ok is false when the tracker has consumed nothing — the
// caller then has nothing to resume and plain-subscribes.
func (s *seqTracker) cursor() (cur message.Cursor, sent map[uint64]uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.epochs) == 0 && s.lastStamp == 0 {
		return message.Cursor{}, nil, false
	}
	cur.SinceStamp = s.lastStamp
	if len(s.epochs) > 0 {
		cur.Seen = make([]message.EpochSeq, 0, len(s.epochs))
		sent = make(map[uint64]uint64, len(s.epochs))
		for _, t := range s.epochs {
			cur.Seen = append(cur.Seen, message.EpochSeq{Epoch: t.epoch, Seq: t.contig})
			sent[t.epoch] = t.contig
		}
	}
	return cur, sent, true
}

// openGaps counts sequence holes currently unaccounted for: frames the
// cursor machinery still expects a broker to replay (or declare lost). At
// quiescence — no publishes in flight, every re-home's replay served — it
// must be zero; the chaos suite asserts exactly that.
func (s *seqTracker) openGaps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.epochs {
		if len(t.pending) == 0 {
			continue
		}
		// Holes, not pending arrivals: the span (contig, maxPending] minus
		// the arrivals inside it.
		var max uint64
		for q := range t.pending {
			if q > max {
				max = q
			}
		}
		n += int(max-t.contig) - len(t.pending)
	}
	return n
}
