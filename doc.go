// Package dynamoth is a scalable, elastic, channel-based publish/subscribe
// middleware for latency-constrained applications, reproducing the system
// described in "Dynamoth: A Scalable Pub/Sub Middleware for
// Latency-Constrained Applications in the Cloud" (Gascon-Samson, Garcia,
// Kemme, Kienzle — ICDCS 2015).
//
// Dynamoth layers a hierarchical load balancer over a pool of independent,
// Redis-like pub/sub servers. Channels are spread across servers by a
// versioned lookup table (the plan); hot channels can be replicated over
// several servers (all-subscribers or all-publishers replication); servers
// are added and removed elastically as the measured load changes. Clients
// keep only a small, lazily updated partial plan and talk directly to the
// pub/sub server responsible for each channel, so every publication takes
// exactly two hops (publisher → server → subscribers).
//
// This package is the client library. A minimal session looks like:
//
//	c, err := dynamoth.Connect(dynamoth.Config{
//		Addrs: map[string]string{"pub1": "127.0.0.1:6379"},
//	})
//	if err != nil { ... }
//	defer c.Close()
//
//	msgs, _ := c.Subscribe("room.42")
//	_ = c.Publish("room.42", []byte("hello"))
//	m := <-msgs // m.Payload == "hello"
//
// The cluster package runs a complete in-process Dynamoth deployment
// (brokers, load analyzers, dispatchers, load balancer) for tests, examples
// and single-machine use; cluster.Cluster.NewClient returns a Client wired
// to it. The cmd/ directory holds the distributed daemons (dynamoth-node,
// dynamoth-lb) that serve the same protocol over TCP.
package dynamoth
