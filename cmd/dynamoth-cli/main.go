// Command dynamoth-cli is a command-line Dynamoth client for poking at a
// deployment: publish messages, subscribe to channels, run a quick
// round-trip latency probe, or tail a node's reconfiguration flight
// recorder.
//
// Usage:
//
//	dynamoth-cli -server pub1=localhost:6379 sub room.lobby
//	dynamoth-cli -server pub1=localhost:6379 pub room.lobby "hello world"
//	dynamoth-cli -server pub1=localhost:6379 ping room.lobby
//	dynamoth-cli events http://localhost:8080
//	dynamoth-cli latency http://localhost:8080
//
// events and latency need no -server: they talk to the admin HTTP endpoint
// (-admin-addr on dynamoth-node / dynamoth-lb). events polls /debug/events
// with a ?since= cursor so each reconfiguration event prints exactly once;
// latency renders a node's /debug/latency per-stage waterfall.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamoth-cli:", err)
		os.Exit(1)
	}
}

func run() error {
	servers := map[string]string{}
	flag.Func("server", "bootstrap server as id=host:port (repeatable)", func(v string) error {
		id, addr, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("expected id=host:port, got %q", v)
		}
		servers[id] = addr
		return nil
	})
	count := flag.Int("n", 10, "ping: number of probes")
	interval := flag.Duration("poll", time.Second, "events: poll interval")
	follow := flag.Bool("follow", true, "events: keep polling (false = one snapshot)")
	flag.Parse()

	args := flag.Args()
	if len(args) >= 1 && args[0] == "events" {
		if len(args) != 2 {
			return fmt.Errorf("usage: dynamoth-cli events <admin-url>")
		}
		return tailEvents(args[1], *interval, *follow, os.Stdout)
	}
	if len(args) >= 1 && args[0] == "latency" {
		if len(args) != 2 {
			return fmt.Errorf("usage: dynamoth-cli latency <admin-url>")
		}
		return showLatency(args[1], os.Stdout)
	}
	if len(servers) == 0 {
		return fmt.Errorf("at least one -server required")
	}
	if len(args) < 2 {
		return fmt.Errorf("usage: dynamoth-cli -server id=addr {sub|pub|ping} <channel> [payload]")
	}
	cmd, channel := args[0], args[1]

	client, err := dynamoth.Connect(dynamoth.Config{Addrs: servers})
	if err != nil {
		return err
	}
	defer client.Close()

	switch cmd {
	case "sub":
		msgs, err := client.Subscribe(channel)
		if err != nil {
			return err
		}
		fmt.Printf("subscribed to %q; ctrl-c to exit\n", channel)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		for {
			select {
			case m, ok := <-msgs:
				if !ok {
					return nil
				}
				fmt.Printf("[%s] %s\n", m.Channel, m.Payload)
			case <-sigc:
				return nil
			}
		}
	case "pub":
		if len(args) < 3 {
			return fmt.Errorf("pub needs a payload")
		}
		payload := strings.Join(args[2:], " ")
		if err := client.Publish(channel, []byte(payload)); err != nil {
			return err
		}
		// Publishing is pipelined; block until the server has acknowledged
		// it rather than exiting on a guessed sleep (which silently dropped
		// the message whenever the flush took longer than 100ms).
		if err := client.Flush(5 * time.Second); err != nil {
			return err
		}
		fmt.Printf("published %d bytes on %q\n", len(payload), channel)
		return nil
	case "ping":
		msgs, err := client.Subscribe(channel)
		if err != nil {
			return err
		}
		// Subscriptions land asynchronously: probe with warmup publishes
		// until one comes back instead of hoping a fixed sleep was enough.
		warmedUp := false
		for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
			if err := client.Publish(channel, []byte("warmup")); err != nil {
				return err
			}
			select {
			case <-msgs:
				warmedUp = true
			case <-time.After(100 * time.Millisecond):
				continue
			}
			break
		}
		if !warmedUp {
			return fmt.Errorf("subscription to %q never became live", channel)
		}
	drain:
		for { // late warmup duplicates must not count as probe replies
			select {
			case <-msgs:
			case <-time.After(200 * time.Millisecond):
				break drain
			}
		}
		// Open-loop probe plan: each probe has an intended instant 100ms
		// apart and RTT is measured from it, so a slow broker shows up as
		// growing RTTs instead of being absorbed by the pacing sleep.
		var total time.Duration
		var behind int
		got := 0
		probeEvery := 100 * time.Millisecond
		epoch := time.Now()
		for i := 0; i < *count; i++ {
			intended := epoch.Add(time.Duration(i) * probeEvery)
			if wait := time.Until(intended); wait > 0 {
				time.Sleep(wait)
			} else if -wait > probeEvery {
				behind++
			}
			if err := client.Publish(channel, []byte(fmt.Sprintf("ping-%d", i))); err != nil {
				return err
			}
			select {
			case <-msgs:
				rtt := time.Since(intended)
				total += rtt
				got++
				fmt.Printf("probe %d: %v\n", i, rtt.Round(time.Microsecond))
			case <-time.After(2 * time.Second):
				fmt.Printf("probe %d: timeout\n", i)
			}
		}
		if got > 0 {
			fmt.Printf("mean RTT over %d probes: %v\n", got, (total / time.Duration(got)).Round(time.Microsecond))
		}
		if behind > 0 {
			fmt.Printf("warning: %d probes ran more than one interval behind schedule\n", behind)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (want sub, pub, ping, latency or events)", cmd)
	}
}

// tailEvents polls an admin endpoint's /debug/events with a ?since= cursor,
// printing each JSONL event exactly once. The cursor advances from the
// X-Trace-Seq response header, so a wrapped-around ring resumes at the oldest
// retained event instead of re-printing.
func tailEvents(target string, interval time.Duration, follow bool, out io.Writer) error {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	if !strings.Contains(target, "/debug/events") {
		target = strings.TrimRight(target, "/") + "/debug/events"
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	var cursor uint64
	for {
		resp, err := http.Get(target + "?since=" + strconv.FormatUint(cursor, 10))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return fmt.Errorf("%s: %s: %s", target, resp.Status, strings.TrimSpace(string(body)))
		}
		if _, err := io.Copy(out, resp.Body); err != nil {
			resp.Body.Close()
			return err
		}
		next, err := strconv.ParseUint(resp.Header.Get("X-Trace-Seq"), 10, 64)
		resp.Body.Close()
		if err == nil && next > cursor {
			cursor = next
		}
		if !follow {
			return nil
		}
		select {
		case <-sigc:
			return nil
		case <-time.After(interval):
		}
	}
}
