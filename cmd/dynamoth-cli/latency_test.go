package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/server"
)

// TestShowLatencyRendersWaterfall drives the latency subcommand against a
// real /debug/latency handler serving a populated Waterfall and checks the
// rendering carries every section: e2e digest, the three stages in pipeline
// order, slow channels, and regions.
func TestShowLatencyRendersWaterfall(t *testing.T) {
	wf := server.Waterfall{
		Server: "pub1",
		E2E:    server.LatencySummary{Count: 1000, P50ms: 1.2, P99ms: 30, MaxMs: 45},
		Stages: []server.StageSummary{
			{Stage: "ingress", LatencySummary: server.LatencySummary{Count: 1000, P50ms: 0.1, P99ms: 0.4}},
			{Stage: "fanout", LatencySummary: server.LatencySummary{Count: 1000, P50ms: 0.9, P99ms: 29}},
			{Stage: "flush", LatencySummary: server.LatencySummary{Count: 62, P50ms: 1.5, P99ms: 31}},
		},
		SlowChannels: []obs.ChannelLatency{
			{Channel: "room.lobby", Count: 400, P99: 30e-3, Contribution: 12},
		},
		Regions: []lla.RegionStats{
			{Region: "eu-west", Count: 1200, P99Ms: 150, MaxMs: 300},
		},
	}
	srv := httptest.NewServer(obs.JSONHandler(func() any { return wf }))
	defer srv.Close()

	var out strings.Builder
	// Bare host:port, no scheme, no path: the command must normalize it.
	if err := showLatency(strings.TrimPrefix(srv.URL, "http://"), &out); err != nil {
		t.Fatalf("showLatency: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"node pub1", "p99 30.00ms", "n=1000",
		"ingress", "fanout", "flush",
		"room.lobby", "eu-west", "150.00ms",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// Stage order must match the pipeline.
	if !(strings.Index(got, "ingress") < strings.Index(got, "fanout") &&
		strings.Index(got, "fanout") < strings.Index(got, "flush")) {
		t.Fatalf("stages out of pipeline order:\n%s", got)
	}
	// The dominant stage gets the longest bar.
	lineOf := func(stage string) string {
		for _, l := range strings.Split(got, "\n") {
			if strings.Contains(l, stage) {
				return l
			}
		}
		return ""
	}
	if strings.Count(lineOf("fanout"), "#") <= strings.Count(lineOf("ingress"), "#") {
		t.Fatalf("fanout bar should dominate ingress:\n%s", got)
	}
}

// TestShowLatencyErrorStatus surfaces non-200 responses as errors.
func TestShowLatencyErrorStatus(t *testing.T) {
	srv := httptest.NewServer(nil) // no routes: 404 on every path
	defer srv.Close()
	var out strings.Builder
	if err := showLatency(srv.URL, &out); err == nil {
		t.Fatal("want error on 404")
	}
}
