package main

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/trace"
)

// syncBuffer is an io.Writer safe to read while the tail goroutine writes.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestTailEventsCursor runs the events subcommand's tail loop against a real
// recorder-backed HTTP handler: a snapshot poll must print every retained
// event as schema-valid JSONL, and a follow poll resuming from the returned
// cursor must print only what arrived in between — never a duplicate.
func TestTailEventsCursor(t *testing.T) {
	rec := trace.NewRecorder(64)
	rec.Record(trace.KindTrigger, 2, "", "overload", 1_800_000, 0)
	rec.Record(trace.KindPlanPush, 2, "pub1", "", 1000, 0)

	srv := httptest.NewServer(rec.EventsHandler())
	defer srv.Close()

	var first strings.Builder
	if err := tailEvents(srv.URL, time.Millisecond, false, &first); err != nil {
		t.Fatal(err)
	}
	if n, err := trace.ValidateJSONL(strings.NewReader(first.String())); err != nil || n != 2 {
		t.Fatalf("snapshot printed %d valid events (err=%v):\n%s", n, err, first.String())
	}

	// Tail again in follow mode with one more event landing mid-stream; the
	// loop is cut after the second poll by closing the server.
	rec.Record(trace.KindPlanApply, 2, "pub1", "", 0, 1)
	var second syncBuffer
	done := make(chan error, 1)
	go func() { done <- tailEvents(srv.URL, 5*time.Millisecond, true, &second) }()
	deadline := time.After(5 * time.Second)
	for !strings.Contains(second.String(), `"plan_apply"`) {
		select {
		case err := <-done:
			t.Fatalf("tail exited early: %v\n%s", err, second.String())
		case <-deadline:
			t.Fatalf("tail never printed the new event:\n%s", second.String())
		case <-time.After(time.Millisecond):
		}
	}
	srv.CloseClientConnections()
	srv.Close()
	<-done

	if n, err := trace.ValidateJSONL(strings.NewReader(second.String())); err != nil || n != 3 {
		t.Fatalf("follow printed %d valid events (err=%v):\n%s", n, err, second.String())
	}
	if strings.Count(second.String(), `"trigger"`) != 1 {
		t.Fatalf("cursor failed to deduplicate polls:\n%s", second.String())
	}
}

// TestTailEventsURLNormalization accepts a bare host:port and an explicit
// /debug/events URL alike.
func TestTailEventsURLNormalization(t *testing.T) {
	rec := trace.NewRecorder(8)
	rec.Record(trace.KindRelease, 3, "pub2", "graceful", 0, 0)
	srv := httptest.NewServer(rec.EventsHandler())
	defer srv.Close()

	for _, target := range []string{
		strings.TrimPrefix(srv.URL, "http://"),
		srv.URL + "/debug/events", // handler serves any path here
	} {
		var out strings.Builder
		if err := tailEvents(target, time.Millisecond, false, &out); err != nil {
			t.Fatalf("tail %q: %v", target, err)
		}
		if !strings.Contains(out.String(), `"release"`) {
			t.Fatalf("tail %q printed nothing useful: %q", target, out.String())
		}
	}
}
