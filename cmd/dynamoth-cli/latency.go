package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/dynamoth/dynamoth/internal/server"
)

// showLatency fetches a node's /debug/latency document and renders the
// per-stage waterfall. target is the node's admin URL (scheme and path
// optional, like the events command).
func showLatency(target string, out io.Writer) error {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	if !strings.Contains(target, "/debug/latency") {
		target = strings.TrimRight(target, "/") + "/debug/latency"
	}
	resp, err := http.Get(target)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", target, resp.Status, strings.TrimSpace(string(body)))
	}
	var wf server.Waterfall
	if err := json.NewDecoder(resp.Body).Decode(&wf); err != nil {
		return fmt.Errorf("decoding %s: %w", target, err)
	}
	renderWaterfall(out, wf)
	return nil
}

// renderWaterfall prints the waterfall as text: each stage's p50/p99 with a
// bar proportional to its share of the end-to-end p99.
func renderWaterfall(out io.Writer, wf server.Waterfall) {
	fmt.Fprintf(out, "node %s  e2e (broker-side): p50 %s  p99 %s  max %s  n=%d\n",
		wf.Server, fmtMs(wf.E2E.P50ms), fmtMs(wf.E2E.P99ms), fmtMs(wf.E2E.MaxMs), wf.E2E.Count)
	const width = 40
	scale := wf.E2E.P99ms
	for _, st := range wf.Stages {
		if scale < st.P99ms {
			scale = st.P99ms // flush can extend past broker-side e2e
		}
	}
	for _, st := range wf.Stages {
		bar := 0
		if scale > 0 {
			bar = int(st.P99ms / scale * width)
		}
		if bar > width {
			bar = width
		}
		fmt.Fprintf(out, "  %-8s p50 %10s  p99 %10s  n %9d  |%s\n",
			st.Stage, fmtMs(st.P50ms), fmtMs(st.P99ms), st.Count, strings.Repeat("#", bar))
	}
	if len(wf.SlowChannels) > 0 {
		fmt.Fprintf(out, "slow channels (p99 x count, last window):\n")
		for _, ch := range wf.SlowChannels {
			fmt.Fprintf(out, "  %-24s p99 %10s  n %9d\n",
				ch.Channel, fmtMs(ch.P99*1e3), ch.Count)
		}
	}
	if len(wf.Regions) > 0 {
		fmt.Fprintf(out, "regions:\n")
		for _, rs := range wf.Regions {
			fmt.Fprintf(out, "  %-24s p99 %10s  max %10s  n %9d\n",
				rs.Region, fmtMs(rs.P99Ms), fmtMs(rs.MaxMs), rs.Count)
		}
	}
}

// fmtMs renders a millisecond quantity at a human scale.
func fmtMs(ms float64) string {
	switch {
	case ms <= 0:
		return "0"
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.2fms", ms)
	default:
		return fmt.Sprintf("%.0fus", ms*1000)
	}
}
