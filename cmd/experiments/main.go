// Command experiments regenerates every table and figure of the paper's
// evaluation (§V) from the deterministic simulator and prints the series the
// figures plot, plus the headline claims.
//
// Usage:
//
//	experiments -run all            # everything (several minutes)
//	experiments -run fig4a          # Experiment 1, all-publishers replication
//	experiments -run fig4b          # Experiment 1, all-subscribers replication
//	experiments -run fig5           # Experiment 2, Dynamoth vs consistent hashing
//	experiments -run fig6           # Experiment 2, load ratios (Dynamoth run)
//	experiments -run fig7           # Experiment 3, elasticity
//	experiments -run fig5 -scale 0.5 -seed 7
//
// -scale shrinks the workloads proportionally (0.5 → half the players /
// clients and half the ramp) for quicker, shape-preserving runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dynamoth/dynamoth/internal/experiment"
	"github.com/dynamoth/dynamoth/internal/sim"
)

func main() {
	var (
		run           = flag.String("run", "all", "fig4a|fig4b|fig5|fig6|fig7|conns|channels|scenarios|all")
		scale         = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
		seed          = flag.Int64("seed", 1, "simulation seed")
		conns         = flag.Int("conns", 100_000, "target connection count for -run conns")
		channels      = flag.Int("channels", 1_000_000, "target distinct channel count for -run channels")
		scenario      = flag.String("scenario", "", "run one scenario by name for -run scenarios ("+scenarioNames()+"; empty = all)")
		scenarioScale = flag.Float64("scenario-scale", 1.0, "scenario load scale factor for -run scenarios")
	)
	flag.Parse()
	if *scale <= 0 || *scale > 4 {
		fmt.Fprintln(os.Stderr, "experiments: -scale must be in (0, 4]")
		os.Exit(1)
	}

	start := time.Now()
	switch *run {
	case "fig4a":
		runFig4a(*scale, *seed)
	case "fig4b":
		runFig4b(*scale, *seed)
	case "fig5":
		runFig5(*scale, *seed)
	case "fig6":
		runFig6(*scale, *seed)
	case "fig7":
		runFig7(*scale, *seed)
	case "ablation":
		runAblations(*seed)
	case "conns":
		if err := runConns(*conns); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: conns:", err)
			os.Exit(1)
		}
	case "channels":
		if err := runChannels(*channels); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: channels:", err)
			os.Exit(1)
		}
	case "scenarios":
		if err := runScenarios(*scenario, *scenarioScale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: scenarios:", err)
			os.Exit(1)
		}
	case "all":
		runFig4a(*scale, *seed)
		runFig4b(*scale, *seed)
		runFig5(*scale, *seed)
		runFig6(*scale, *seed)
		runFig7(*scale, *seed)
		runAblations(*seed)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown -run %q\n", *run)
		os.Exit(1)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func steps(scale float64) []int {
	base := []int{100, 200, 300, 400, 500, 600, 700, 800}
	out := make([]int, 0, len(base))
	for _, b := range base {
		n := int(float64(b) * scale)
		if n > 0 {
			out = append(out, n)
		}
	}
	return out
}

func runFig4a(scale float64, seed int64) {
	fmt.Println("=== Figure 4a — Experiment 1 “All Publishers” replication ===")
	fmt.Println("1 publisher at 10 msg/s, N subscribers; response time with and")
	fmt.Println("without all-publishers replication over 3 servers.")
	res := experiment.RunFig4a(experiment.MicroOptions{Steps: steps(scale), Seed: seed})
	fmt.Println(res.Series.Table())
	fmt.Printf("healthy (≤150ms, ≥99%% delivery) up to: no-replication %d subscribers, replicated %d subscribers\n",
		res.MaxHealthyNoRepl, res.MaxHealthyRepl)
	fmt.Printf("paper: single server degrades above ~500 subscribers; 3-server replication stays low through 800\n\n")
}

func runFig4b(scale float64, seed int64) {
	fmt.Println("=== Figure 4b — Experiment 1 “All Subscribers” replication ===")
	fmt.Println("N publishers at 10 msg/s each, 1 subscriber; response time and")
	fmt.Println("delivery with and without all-subscribers replication over 3 servers.")
	res := experiment.RunFig4b(experiment.MicroOptions{Steps: steps(scale), Seed: seed})
	fmt.Println(res.Series.Table())
	fmt.Printf("healthy up to: no-replication %d publishers, replicated %d publishers\n",
		res.MaxHealthyNoRepl, res.MaxHealthyRepl)
	fmt.Printf("paper: single server fails above ~200 publishers; replication supports nearly 600\n\n")
}

func gameScale(scale float64, seed int64, mode sim.Mode) *experiment.GameResult {
	peak := int(1200 * scale)
	ramp := time.Duration(float64(1000*time.Second) * scale)
	return experiment.RunScalability(mode, peak, ramp, seed)
}

func runFig5(scale float64, seed int64) {
	fmt.Println("=== Figure 5 — Experiment 2: Scalability, Dynamoth vs consistent hashing ===")
	fmt.Printf("players ramp %d→%d, 3 updates/s each, 8×8 tile world, ≤8 servers\n\n",
		int(120*scale), int(1200*scale))
	dyn := gameScale(scale, seed, sim.ModeDynamoth)
	fmt.Println("--- Dynamoth (Fig 5a players / 5b messages+servers / 5c response time) ---")
	fmt.Println(dyn.Series.Table())
	ch := gameScale(scale, seed, sim.ModeConsistentHashing)
	fmt.Println("--- Consistent hashing baseline ---")
	fmt.Println(ch.Series.Table())
	fmt.Printf("max players served at ≤150ms: dynamoth=%d  consistent-hashing=%d  (+%.0f%%)\n",
		dyn.MaxHealthyPlayers, ch.MaxHealthyPlayers,
		100*(float64(dyn.MaxHealthyPlayers)/float64(max(1, ch.MaxHealthyPlayers))-1))
	fmt.Printf("steady response time: dynamoth %.1fms (paper ~75ms)\n", dyn.MeanRTms)
	fmt.Printf("rebalances: dynamoth=%d  consistent-hashing=%d\n", dyn.Rebalances, ch.Rebalances)
	fmt.Printf("cloud cost (instance-hours): dynamoth=%.2f  consistent-hashing=%.2f\n",
		dyn.InstanceSeconds/3600, ch.InstanceSeconds/3600)
	fmt.Printf("mean client local-plan size at end: dynamoth=%.1f entries (of %d+ channels in the system)\n",
		dyn.AvgLocalPlanSize, 64)
	fmt.Printf("paper: Dynamoth ~1000 players vs CH ~625 (+60%%)\n\n")
}

func runFig6(scale float64, seed int64) {
	fmt.Println("=== Figure 6 — Experiment 2: per-server load ratios (Dynamoth run) ===")
	dyn := gameScale(scale, seed, sim.ModeDynamoth)
	fmt.Println(dyn.Series.Table())
	fmt.Println("columns avgLR/maxLR are the Fig 6 series; rebalance marks are the diamonds.")
	fmt.Printf("paper: average LR held below 1 until global saturation; busiest below 1 for most of the run\n\n")
}

func runFig7(scale float64, seed int64) {
	fmt.Println("=== Figure 7 — Experiment 3: Elasticity ===")
	high, low, mid := int(800*scale), int(200*scale), int(600*scale)
	phase := time.Duration(float64(400*time.Second) * scale)
	fmt.Printf("players: 0→%d, drop to %d, rise to %d\n\n", high, low, mid)
	res := experiment.RunElasticity(high, low, mid, phase, seed)
	fmt.Println(res.Series.Table())
	fmt.Printf("peak servers %d, final servers %d (released after load drop), rebalances %d, steady RT %.1fms\n",
		res.PeakServers, res.FinalServers, res.Rebalances, res.MeanRTms)
	fmt.Printf("cloud cost: %.2f instance-hours (a fixed 8-server pool would cost %.2f)\n",
		res.InstanceSeconds/3600, 8*(res.Series.Xs()[len(res.Series.Xs())-1])/3600)
	fmt.Printf("paper: servers added on rises, released (with delay) on drops; no latency spikes on scale-down\n\n")
}

func runAblations(seed int64) {
	fmt.Println("=== Ablation A — Algorithm 1 runs unaided ===")
	fmt.Println("Fig 4b's firehose offered to a full Dynamoth deployment with no")
	fmt.Println("manual plan: the balancer must replicate the channel by itself.")
	res := experiment.RunAutoReplication(400, seed)
	fmt.Printf("replication enabled: %v over %d servers (%d plan changes)\n",
		res.ReplicationEnabled, res.Replicas, res.Rebalances)
	fmt.Printf("before: %.1fms at %.0f%%%% delivery   after: %.1fms at %.0f%%%% delivery\n\n",
		res.RTBeforeMs, res.DeliveryBefore*100, res.RTAfterMs, res.DeliveryAfter*100)

	fmt.Println("=== Ablation B — T_wait sweep (Experiment 2 workload, 40% scale) ===")
	rows := experiment.RunTWaitAblation([]time.Duration{
		2 * time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second,
	}, seed)
	fmt.Println(experiment.TWaitSeries(rows).Table())
	fmt.Println("longer T_wait → fewer plan changes; the default (10s) balances")
	fmt.Println("reaction speed against plan churn.")
	fmt.Println()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
