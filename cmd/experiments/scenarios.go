package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
	"github.com/dynamoth/dynamoth/internal/loadgen"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/resp"
	"github.com/dynamoth/dynamoth/internal/workload"
)

// runScenarios drives the open-loop scenario suite against real
// dynamoth-node subprocesses: each scenario boots a fresh node, establishes
// its subscriber topology, publishes on a fixed arrival schedule through
// real clients, and writes BENCH_scenario_<name>.json with latency
// quantiles measured from the *intended* send instants. filter selects one
// scenario by name (empty = all); scale shrinks the suite shape-preserving.
func runScenarios(filter string, scale float64, seed int64) error {
	fmt.Println("=== Scenario suite — open-loop load against a real node ===")
	fmt.Printf("scale %.2f; latency is measured from intended send instants (coordinated-omission-safe)\n\n", scale)

	binDir, err := os.MkdirTemp("", "dynamoth-scenarios-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(binDir)
	nodeBin, err := buildNodeBin(binDir)
	if err != nil {
		return err
	}

	ran := 0
	for _, sc := range workload.Scenarios() {
		if filter != "" && sc.Name != filter {
			continue
		}
		sc = sc.Scale(scale)
		if err := sc.Validate(); err != nil {
			return err
		}
		if err := runScenario(nodeBin, sc, seed); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no scenario matches -scenario %q", filter)
	}
	return nil
}

// nextClientID hands out unique client node identities. Envelope IDs embed
// the publisher's node id; two clients sharing one would interleave their
// sequence streams and trip subscriber-side dedup into dropping real
// messages.
var nextClientID atomic.Uint32

func scenarioClient(addr string) (*dynamoth.Client, error) {
	return dynamoth.Connect(dynamoth.Config{
		Addrs:  map[string]string{"bench": addr},
		NodeID: 0xA000 + nextClientID.Add(1),
	})
}

// runScenario boots one node and executes one scenario (or blend) on it.
func runScenario(nodeBin string, sc workload.Scenario, seed int64) error {
	fmt.Printf("--- %s: %s ---\n", sc.Name, sc.Description)
	node, err := startNode(nodeBin)
	if err != nil {
		return err
	}
	defer node.Stop()

	components := sc.Components
	if len(components) == 0 {
		components = []workload.Scenario{sc}
	}

	// One shared recorder per scenario; blends additionally get per-component
	// recorders chained into it so the BENCH json shows both the blended
	// tail and each tenant's own.
	blended := loadgen.NewRecorder()
	type compRun struct {
		sc  workload.Scenario
		rec *loadgen.Recorder
		rep *loadgen.Report
		err error
	}
	runs := make([]*compRun, len(components))
	for i, comp := range components {
		rec := blended
		if len(sc.Components) > 0 {
			rec = loadgen.NewRecorderChained(blended)
		}
		runs[i] = &compRun{sc: comp, rec: rec}
	}

	var cleanups []func()
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}()

	// Topology: subscribers first, so the readiness barrier below can gate
	// on the broker actually holding every measured channel.
	distinct := map[string]bool{}
	for _, run := range runs {
		comp, rec := run.sc, run.rec
		for i := 0; i < comp.Channels; i++ {
			if comp.Subscribers > 0 {
				distinct[comp.ChannelName(i)] = true
			}
		}
		for s := 0; s < comp.Subscribers; s++ {
			client, err := scenarioClient(node.RespAddr)
			if err != nil {
				return fmt.Errorf("subscriber %d: %w", s, err)
			}
			cleanups = append(cleanups, func() { client.Close() })
			for k := 0; k < comp.SubsPerSubscriber; k++ {
				msgs, err := client.Subscribe(comp.ChannelName(s + k))
				if err != nil {
					return fmt.Errorf("subscribe: %w", err)
				}
				go func(msgs <-chan dynamoth.Message) {
					for m := range msgs {
						rec.Observe(m.Payload)
					}
				}(msgs)
			}
		}
		for p := 0; p < comp.PatternSubscribers; p++ {
			stop, err := patternSubscriber(node.RespAddr, comp.Pattern, rec)
			if err != nil {
				return fmt.Errorf("pattern subscriber: %w", err)
			}
			cleanups = append(cleanups, stop)
		}
	}

	// Readiness barrier: client Subscribe is pipelined fire-and-forget, so
	// poll the broker's channel gauge until every measured channel is held
	// instead of guessing a settle sleep. Pattern subscribers acked their
	// PSUBSCRIBE synchronously inside patternSubscriber.
	if len(distinct) > 0 {
		want := float64(len(distinct))
		if err := awaitMetric(node.AdminAddr, "dynamoth_broker_channels", 30*time.Second,
			func(v float64) bool { return v >= want }); err != nil {
			return fmt.Errorf("subscription barrier: %w", err)
		}
	}

	// Publisher fleets: each component's logical publishers are fanned over
	// a bounded pool of real client connections.
	var wg sync.WaitGroup
	var churnOps atomic.Uint64
	churnStop := make(chan struct{})
	for _, run := range runs {
		comp, rec := run.sc, run.rec
		pool := comp.Publishers
		if pool > 16 {
			pool = 16
		}
		pubs := make([]*dynamoth.Client, pool)
		for i := range pubs {
			client, err := scenarioClient(node.RespAddr)
			if err != nil {
				return fmt.Errorf("publisher pool: %w", err)
			}
			cleanups = append(cleanups, func() { client.Close() })
			pubs[i] = client
		}

		if comp.ChurnPerSec > 0 {
			wg.Add(1)
			go func(comp workload.Scenario) {
				defer wg.Done()
				churnLoop(pubs[0], comp, churnStop, &churnOps)
			}(comp)
		}

		wg.Add(1)
		go func(run *compRun, comp workload.Scenario, rec *loadgen.Recorder) {
			defer wg.Done()
			run.rep, run.err = loadgen.Run(loadgen.Options{
				Publishers: comp.Publishers,
				Rate:       comp.RatePerPublisher,
				Duration:   comp.Duration,
				Arrival:    comp.Arrival,
				Seed:       seed,
				Recorder:   rec,
				Send: func(pub int, seq uint64, intended, actual time.Duration) error {
					payload := loadgen.AppendStamp(nil, intended, actual, comp.PayloadBytes)
					return pubs[pub%len(pubs)].Publish(comp.ChannelName(pub), payload)
				},
			})
		}(run, comp, rec)
	}
	wg.Wait()
	close(churnStop)
	for _, run := range runs {
		if run.err != nil {
			return run.err
		}
	}

	// Drain: deliveries lag the last send by queueing we must not truncate
	// (that would be coordinated omission at the back edge of the run).
	// Wait until the delivered count stops moving.
	awaitDeliveryStable(blended, 10*time.Second)

	out := scenarioJSON(sc, runs[0].rep, blended, churnOps.Load())
	// Per-stage latency breakdown from the node's /debug/latency waterfall:
	// broker-side e2e with its ingress/fanout/flush decomposition, slow
	// channels, and regions — scraped before the node stops.
	if wf, err := fetchWaterfall(node.AdminAddr); err == nil {
		out["stageBreakdown"] = wf
	} else {
		fmt.Printf("warning: stage breakdown unavailable: %v\n", err)
	}
	if len(sc.Components) > 0 {
		comps := map[string]any{}
		for _, run := range runs {
			comps[run.sc.Name] = scenarioComponentJSON(run.sc, run.rep, run.rec)
		}
		out["components"] = comps
		out["report"] = nil // per-component reports replace the single one
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	file := "BENCH_scenario_" + sc.Name + ".json"
	if err := os.WriteFile(file, append(data, '\n'), 0o644); err != nil {
		return err
	}
	ip50, ip99, ip999, _ := loadgen.QuantilesUs(blended.Intended())
	fmt.Printf("delivered=%d stampErrs=%d  intended p50=%.0fµs p99=%.0fµs p999=%.0fµs\nwrote %s\n\n",
		blended.Delivered(), blended.StampErrors(), ip50, ip99, ip999, file)
	return nil
}

// patternSubscriber opens a raw RESP connection, PSUBSCRIBEs to pattern, and
// feeds every pmessage's inner payload into rec. The high-level client does
// not wrap pattern subscriptions (its dedup tracking is per-channel), so the
// chat scenario exercises the broker's glob delivery path at the wire level.
// The returned func closes the connection. The PSUBSCRIBE ack is awaited
// before returning — this is the pattern half of the readiness barrier.
func patternSubscriber(addr, pattern string, rec *loadgen.Recorder) (func(), error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(resp.AppendCommandStrings(nil, "PSUBSCRIBE", pattern)); err != nil {
		conn.Close()
		return nil, err
	}
	r := resp.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	ack, err := r.ReadValue()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("psubscribe ack: %w", err)
	}
	if ack.Kind != resp.KindArray || len(ack.Array) != 3 || string(ack.Array[0].Str) != "psubscribe" {
		conn.Close()
		return nil, fmt.Errorf("unexpected psubscribe reply %v", ack.Kind)
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck
	go func() {
		for {
			v, err := r.ReadValue()
			if err != nil {
				return // connection closed by cleanup
			}
			if v.Kind != resp.KindArray || len(v.Array) != 4 || string(v.Array[0].Str) != "pmessage" {
				continue
			}
			// Publishes from real clients arrive as marshaled envelopes;
			// unwrap to reach the loadgen stamp.
			if env, err := message.Unmarshal(v.Array[3].Str); err == nil {
				rec.Observe(env.Payload)
			}
		}
	}()
	return func() { conn.Close() }, nil
}

// churnLoop runs presence-style subscription churn: subscribe/unsubscribe
// pairs against rotating side channels at comp.ChurnPerSec, paced by the
// same drift-free schedule as the publishers.
func churnLoop(client *dynamoth.Client, comp workload.Scenario, stop <-chan struct{}, ops *atomic.Uint64) {
	sched := loadgen.NewSchedule(loadgen.ArrivalPeriodic, comp.ChurnPerSec, 0, 0)
	ticks := sched.Ticks()
	start := time.Now()
	for i := 0; ; i++ {
		at := ticks.Next()
		if at >= comp.Duration {
			return
		}
		select {
		case <-stop:
			return
		case <-time.After(time.Until(start.Add(at))):
		}
		ch := fmt.Sprintf("scn.%s.churn.%d", comp.Name, i%64)
		if _, err := client.Subscribe(ch); err != nil {
			continue
		}
		client.Unsubscribe(ch) //nolint:errcheck
		ops.Add(1)
	}
}

// awaitDeliveryStable polls the recorder until the delivered count stops
// advancing (three consecutive 100ms windows without progress) or limit
// elapses.
func awaitDeliveryStable(rec *loadgen.Recorder, limit time.Duration) {
	deadline := time.Now().Add(limit)
	last := rec.Delivered()
	idle := 0
	for idle < 3 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		if cur := rec.Delivered(); cur != last {
			last = cur
			idle = 0
		} else {
			idle++
		}
	}
}

// scenarioJSON assembles one scenario's BENCH output.
func scenarioJSON(sc workload.Scenario, rep *loadgen.Report, rec *loadgen.Recorder, churnOps uint64) map[string]any {
	out := map[string]any{
		"description": "Open-loop scenario run: publishers follow a fixed arrival schedule and every " +
			"message is stamped with its intended send instant; intended* quantiles measure delivery " +
			"latency from that instant, so publisher backpressure widens the tail instead of " +
			"disappearing (coordinated omission). actual* quantiles are the closed-loop figure kept " +
			"for contrast — intendedP99 >= actualP99 always, and a large gap means the generator " +
			"ran behind schedule (see behindSchedule/maxSendLagUs in the report).",
		"generated": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cores":  runtime.NumCPU(),
			"note": "single-container run: clients and node share the machine; latencies are " +
				"same-host TCP figures",
		},
		"scenario": map[string]any{
			"name":        sc.Name,
			"description": sc.Description,
			"offered":     sc.OfferedPerSec(),
			"durationSec": sc.Duration.Seconds(),
		},
		"report":   rep,
		"churnOps": churnOps,
	}
	addRecorder(out, rec)
	return out
}

func scenarioComponentJSON(sc workload.Scenario, rep *loadgen.Report, rec *loadgen.Recorder) map[string]any {
	out := map[string]any{
		"offered": sc.OfferedPerSec(),
		"report":  rep,
	}
	addRecorder(out, rec)
	return out
}

// addRecorder emits both histograms' quantiles plus the delivery counters.
func addRecorder(out map[string]any, rec *loadgen.Recorder) {
	ip50, ip99, ip999, imax := loadgen.QuantilesUs(rec.Intended())
	ap50, ap99, ap999, amax := loadgen.QuantilesUs(rec.Actual())
	out["delivered"] = rec.Delivered()
	out["stampErrors"] = rec.StampErrors()
	out["intendedP50Us"] = ip50
	out["intendedP99Us"] = ip99
	out["intendedP999Us"] = ip999
	out["intendedMaxUs"] = imax
	out["actualP50Us"] = ap50
	out["actualP99Us"] = ap99
	out["actualP999Us"] = ap999
	out["actualMaxUs"] = amax
}

// scenarioNames lists the stock suite for -h output.
func scenarioNames() string {
	var names []string
	for _, s := range workload.Scenarios() {
		names = append(names, s.Name)
	}
	return strings.Join(names, "|")
}
