package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
)

// Channel-soak knobs. The node runs with deliberately small hot-state caps
// so both checkpoints land after every cache is full: any RSS growth between
// them is a per-channel leak, not a cache filling to its bound.
const (
	soakLLACap       = 4096 // -lla-channel-cap
	soakTopKCap      = 4096 // -topk-cap
	soakWorkingSet   = 1024 // channels in the steady-state publish loop
	soakSteadyOps    = 50_000
	soakPayloadBytes = 64
)

// runChannels is the million-channel soak: a real dynamoth-node subprocess
// with bounded hot-state caches takes one publication on each of `target`
// distinct channels from a real client over TCP. RSS on both sides is read
// at target/10 and at target; with every per-channel map bounded, the two
// readings must agree within noise — memory is O(cap), not O(channels).
// Steady-state publish throughput and allocations are measured at both
// checkpoints over a fixed working set, and the node's hotstate families
// are scraped to show each cache pinned at its capacity. Writes
// BENCH_channels.json.
func runChannels(target int) error {
	fmt.Println("=== Channel soak — bounded hot-state caches under an unbounded namespace ===")
	fmt.Printf("target %d distinct channels; node caps: lla=%d topk=%d; RSS checkpoints at %d and %d\n\n",
		target, soakLLACap, soakTopKCap, target/10, target)
	if target < 10 {
		return fmt.Errorf("-channels must be at least 10, got %d", target)
	}

	binDir, err := os.MkdirTemp("", "dynamoth-channels-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(binDir)
	nodeBin := filepath.Join(binDir, "dynamoth-node")
	build := exec.Command("go", "build", "-o", nodeBin, "./cmd/dynamoth-node")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building dynamoth-node: %w", err)
	}

	cmd := exec.Command(nodeBin,
		"-id", "bench",
		"-servers", "bench",
		"-listen", "127.0.0.1:0",
		"-admin-addr", "127.0.0.1:0",
		"-lla-channel-cap", strconv.Itoa(soakLLACap),
		"-topk-cap", strconv.Itoa(soakTopKCap),
		"-log-level", "error")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
	}()

	respAddr, adminAddr, err := parseNodeBanner(stdout)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained

	client, err := dynamoth.Connect(dynamoth.Config{
		Addrs:  map[string]string{"bench": respAddr},
		NodeID: 0xC0DE,
	})
	if err != nil {
		return fmt.Errorf("connecting client: %w", err)
	}
	defer client.Close()

	// Fixed working set for the steady-state measurements: names are
	// pre-generated so the loop measures the publish path, not fmt.
	working := make([]string, soakWorkingSet)
	for i := range working {
		working[i] = "steady." + strconv.Itoa(i)
	}
	payload := make([]byte, soakPayloadBytes)

	sweep := func(from, to int) error {
		for i := from; i < to; i++ {
			if err := client.Publish("soak."+strconv.Itoa(i), payload); err != nil {
				return fmt.Errorf("publish channel %d: %w", i, err)
			}
			if (i+1)%100_000 == 0 {
				fmt.Printf("  swept %d channels\n", i+1)
			}
		}
		return nil
	}

	// Warmup: one throwaway steady-state burst plus a seal cycle, so both
	// checkpoints compare against the same established heap high-water
	// (GC pacing, connection buffers, the LLA's first full-cap seals).
	for i := 0; i < soakSteadyOps; i++ {
		if err := client.Publish(working[i%len(working)], payload); err != nil {
			return fmt.Errorf("warmup publish: %w", err)
		}
	}
	time.Sleep(1500 * time.Millisecond)

	tenth := target / 10
	start := time.Now()
	if err := sweep(0, tenth); err != nil {
		return err
	}
	at10, err := channelsCheckpoint(client, cmd.Process.Pid, adminAddr, tenth, working, payload)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %d: server RSS %d KB, client RSS %d KB, steady %.0f msg/s at %.1f allocs/op\n",
		tenth, at10.ServerRSSKB, at10.ClientRSSKB, at10.SteadyPublishPerSec, at10.SteadyAllocsPerOp)

	if err := sweep(tenth, target); err != nil {
		return err
	}
	atFull, err := channelsCheckpoint(client, cmd.Process.Pid, adminAddr, target, working, payload)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %d: server RSS %d KB, client RSS %d KB, steady %.0f msg/s at %.1f allocs/op\n",
		target, atFull.ServerRSSKB, atFull.ClientRSSKB, atFull.SteadyPublishPerSec, atFull.SteadyAllocsPerOp)

	hotstate := scrapeFamilies(adminAddr, "dynamoth_node_hotstate")
	serverRatio := ratio(atFull.ServerRSSKB, at10.ServerRSSKB)
	clientRatio := ratio(atFull.ClientRSSKB, at10.ClientRSSKB)
	fmt.Printf("\nRSS growth %d→%d channels: server ×%.3f, client ×%.3f (flat ≤ 1.10 expected)\n",
		tenth, target, serverRatio, clientRatio)
	fmt.Printf("sweep wall time: %v\n", time.Since(start).Round(time.Millisecond))

	out := map[string]any{
		"description": "Channel soak: a real dynamoth-node subprocess with bounded hot-state " +
			"caches receives one publication on each of targetChannels distinct channels from a " +
			"real client over TCP. Both checkpoints land after every cache is full, so the RSS " +
			"ratio between them is the per-channel leak test: bounded caches hold it flat while " +
			"the channel namespace grows 10x. steadyPublishPerSec/steadyAllocsPerOp measure the " +
			"client publish path over a fixed working set at each checkpoint (allocs include the " +
			"client's background maintenance loop, amortized over steadyOps).",
		"generated": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cores":  runtime.NumCPU(),
			"note": "single-container run: client and node share the machine, so steady-state " +
				"throughput is a same-host TCP figure, not a network one",
		},
		"config": map[string]any{
			"targetChannels":     target,
			"llaChannelCap":      soakLLACap,
			"topkCap":            soakTopKCap,
			"clientLocalPlanCap": "default (4096)",
			"workingSet":         soakWorkingSet,
			"steadyOps":          soakSteadyOps,
			"payloadBytes":       soakPayloadBytes,
		},
		"at10pct":        at10,
		"atTarget":       atFull,
		"serverRssRatio": serverRatio,
		"clientRssRatio": clientRatio,
		"hotstate":       hotstate,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_channels.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_channels.json")
	return nil
}

// channelsResult is one checkpoint's measurements.
type channelsResult struct {
	Channels            int     `json:"channels"`
	ServerRSSKB         int64   `json:"serverRssKb"`
	ClientRSSKB         int64   `json:"clientRssKb"`
	SteadyPublishPerSec float64 `json:"steadyPublishPerSec"`
	SteadyAllocsPerOp   float64 `json:"steadyAllocsPerOp"`
	SteadyBytesPerOp    float64 `json:"steadyBytesPerOp"`
}

// channelsCheckpoint runs the steady-state publish measurement over the
// fixed working set, waits out one LLA report cycle so the node's seal and
// report-marshal paths have hit their allocation high-water, then forces a
// GC on both sides (the node through its pprof heap endpoint, this process
// directly) and reads both RSS figures. RSS is read last on purpose: Go
// keeps freed pages at the high-water mark, so each checkpoint must include
// the same steady-state churn for the two readings to be comparable.
func channelsCheckpoint(client *dynamoth.Client, nodePid int, adminAddr string, channels int, working []string, payload []byte) (*channelsResult, error) {
	res := &channelsResult{Channels: channels}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < soakSteadyOps; i++ {
		if err := client.Publish(working[i%len(working)], payload); err != nil {
			return nil, fmt.Errorf("steady publish: %w", err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	res.SteadyPublishPerSec = float64(soakSteadyOps) / elapsed.Seconds()
	res.SteadyAllocsPerOp = float64(after.Mallocs-before.Mallocs) / soakSteadyOps
	res.SteadyBytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / soakSteadyOps

	// One full LLA unit + report interval: the node seals its (cap-bounded)
	// accumulator and marshals a report at least once before RSS is read.
	time.Sleep(3500 * time.Millisecond)
	// Min of three samples: a single reading races GC pacing and the
	// scavenger on both sides; the minimum is the reproducible live set.
	for i := 0; i < 3; i++ {
		forceNodeGC(adminAddr)
		runtime.GC()
		debug.FreeOSMemory()
		server, client := readRSSKB(nodePid), readRSSKB(os.Getpid())
		if res.ServerRSSKB == 0 || server < res.ServerRSSKB {
			res.ServerRSSKB = server
		}
		if res.ClientRSSKB == 0 || client < res.ClientRSSKB {
			res.ClientRSSKB = client
		}
		time.Sleep(200 * time.Millisecond)
	}
	return res, nil
}

// forceNodeGC makes the node subprocess run a GC and return freed pages to
// the OS (its /debug/freemem admin route), so readRSSKB sees the live set,
// not the allocation high-water mark (best effort).
func forceNodeGC(adminAddr string) {
	resp, err := http.Get("http://" + adminAddr + "/debug/freemem")
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}

// scrapeFamilies pulls every sample whose name starts with prefix off the
// node's /metrics, keyed by the full name including labels.
func scrapeFamilies(adminAddr, prefix string) map[string]float64 {
	out := map[string]float64{}
	resp, err := http.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
