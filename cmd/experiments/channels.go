package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	dynamoth "github.com/dynamoth/dynamoth"
)

// Channel-soak knobs. The node runs with deliberately small hot-state caps
// so both checkpoints land after every cache is full: any RSS growth between
// them is a per-channel leak, not a cache filling to its bound.
const (
	soakLLACap       = 4096 // -lla-channel-cap
	soakTopKCap      = 4096 // -topk-cap
	soakWorkingSet   = 1024 // channels in the steady-state publish loop
	soakSteadyOps    = 50_000
	soakPayloadBytes = 64
)

// runChannels is the million-channel soak: a real dynamoth-node subprocess
// with bounded hot-state caches takes one publication on each of `target`
// distinct channels from a real client over TCP. RSS on both sides is read
// at target/10 and at target; with every per-channel map bounded, the two
// readings must agree within noise — memory is O(cap), not O(channels).
// Steady-state publish throughput and allocations are measured at both
// checkpoints over a fixed working set, and the node's hotstate families
// are scraped to show each cache pinned at its capacity. Writes
// BENCH_channels.json.
func runChannels(target int) error {
	fmt.Println("=== Channel soak — bounded hot-state caches under an unbounded namespace ===")
	fmt.Printf("target %d distinct channels; node caps: lla=%d topk=%d; RSS checkpoints at %d and %d\n\n",
		target, soakLLACap, soakTopKCap, target/10, target)
	if target < 10 {
		return fmt.Errorf("-channels must be at least 10, got %d", target)
	}

	binDir, err := os.MkdirTemp("", "dynamoth-channels-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(binDir)
	nodeBin, err := buildNodeBin(binDir)
	if err != nil {
		return err
	}

	node, err := startNode(nodeBin,
		"-lla-channel-cap", strconv.Itoa(soakLLACap),
		"-topk-cap", strconv.Itoa(soakTopKCap))
	if err != nil {
		return err
	}
	defer node.Stop()
	adminAddr := node.AdminAddr

	client, err := dynamoth.Connect(dynamoth.Config{
		Addrs:  map[string]string{"bench": node.RespAddr},
		NodeID: 0xC0DE,
	})
	if err != nil {
		return fmt.Errorf("connecting client: %w", err)
	}
	defer client.Close()

	// Fixed working set for the steady-state measurements: names are
	// pre-generated so the loop measures the publish path, not fmt.
	working := make([]string, soakWorkingSet)
	for i := range working {
		working[i] = "steady." + strconv.Itoa(i)
	}
	payload := make([]byte, soakPayloadBytes)

	sweep := func(from, to int) error {
		for i := from; i < to; i++ {
			if err := client.Publish("soak."+strconv.Itoa(i), payload); err != nil {
				return fmt.Errorf("publish channel %d: %w", i, err)
			}
			if (i+1)%100_000 == 0 {
				fmt.Printf("  swept %d channels\n", i+1)
			}
		}
		return nil
	}

	// Warmup: one throwaway steady-state burst plus a seal cycle, so both
	// checkpoints compare against the same established heap high-water
	// (GC pacing, connection buffers, the LLA's first full-cap seals). The
	// burst is flushed to the broker, then the wait ends when the node has
	// actually built its first LLA report — not after a guessed sleep that
	// under-waits on a loaded machine.
	for i := 0; i < soakSteadyOps; i++ {
		if err := client.Publish(working[i%len(working)], payload); err != nil {
			return fmt.Errorf("warmup publish: %w", err)
		}
	}
	if err := client.Flush(30 * time.Second); err != nil {
		return fmt.Errorf("warmup flush: %w", err)
	}
	if err := awaitCounterAdvance(adminAddr, "dynamoth_node_lla_reports_total", 0, 1, 30*time.Second); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}

	tenth := target / 10
	start := time.Now()
	if err := sweep(0, tenth); err != nil {
		return err
	}
	at10, err := channelsCheckpoint(client, node.Pid(), adminAddr, tenth, working, payload)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %d: server RSS %d KB, client RSS %d KB, steady %.0f msg/s at %.1f allocs/op\n",
		tenth, at10.ServerRSSKB, at10.ClientRSSKB, at10.SteadyPublishPerSec, at10.SteadyAllocsPerOp)

	if err := sweep(tenth, target); err != nil {
		return err
	}
	atFull, err := channelsCheckpoint(client, node.Pid(), adminAddr, target, working, payload)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %d: server RSS %d KB, client RSS %d KB, steady %.0f msg/s at %.1f allocs/op\n",
		target, atFull.ServerRSSKB, atFull.ClientRSSKB, atFull.SteadyPublishPerSec, atFull.SteadyAllocsPerOp)

	hotstate := scrapeFamilies(adminAddr, "dynamoth_node_hotstate")
	serverRatio := ratio(atFull.ServerRSSKB, at10.ServerRSSKB)
	clientRatio := ratio(atFull.ClientRSSKB, at10.ClientRSSKB)
	fmt.Printf("\nRSS growth %d→%d channels: server ×%.3f, client ×%.3f (flat ≤ 1.10 expected)\n",
		tenth, target, serverRatio, clientRatio)
	fmt.Printf("sweep wall time: %v\n", time.Since(start).Round(time.Millisecond))

	out := map[string]any{
		"description": "Channel soak: a real dynamoth-node subprocess with bounded hot-state " +
			"caches receives one publication on each of targetChannels distinct channels from a " +
			"real client over TCP. Both checkpoints land after every cache is full, so the RSS " +
			"ratio between them is the per-channel leak test: bounded caches hold it flat while " +
			"the channel namespace grows 10x. steadyPublishPerSec/steadyAllocsPerOp measure the " +
			"client publish path over a fixed working set at each checkpoint (allocs include the " +
			"client's background maintenance loop, amortized over steadyOps).",
		"generated": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cores":  runtime.NumCPU(),
			"note": "single-container run: client and node share the machine, so steady-state " +
				"throughput is a same-host TCP figure, not a network one",
		},
		"config": map[string]any{
			"targetChannels":     target,
			"llaChannelCap":      soakLLACap,
			"topkCap":            soakTopKCap,
			"clientLocalPlanCap": "default (4096)",
			"workingSet":         soakWorkingSet,
			"steadyOps":          soakSteadyOps,
			"payloadBytes":       soakPayloadBytes,
		},
		"at10pct":        at10,
		"atTarget":       atFull,
		"serverRssRatio": serverRatio,
		"clientRssRatio": clientRatio,
		"hotstate":       hotstate,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_channels.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_channels.json")
	return nil
}

// channelsResult is one checkpoint's measurements.
type channelsResult struct {
	Channels            int     `json:"channels"`
	ServerRSSKB         int64   `json:"serverRssKb"`
	ClientRSSKB         int64   `json:"clientRssKb"`
	SteadyPublishPerSec float64 `json:"steadyPublishPerSec"`
	SteadyAllocsPerOp   float64 `json:"steadyAllocsPerOp"`
	SteadyBytesPerOp    float64 `json:"steadyBytesPerOp"`
}

// channelsCheckpoint runs the steady-state publish measurement over the
// fixed working set, waits out one LLA report cycle so the node's seal and
// report-marshal paths have hit their allocation high-water, then forces a
// GC on both sides (the node through its pprof heap endpoint, this process
// directly) and reads both RSS figures. RSS is read last on purpose: Go
// keeps freed pages at the high-water mark, so each checkpoint must include
// the same steady-state churn for the two readings to be comparable.
func channelsCheckpoint(client *dynamoth.Client, nodePid int, adminAddr string, channels int, working []string, payload []byte) (*channelsResult, error) {
	res := &channelsResult{Channels: channels}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < soakSteadyOps; i++ {
		if err := client.Publish(working[i%len(working)], payload); err != nil {
			return nil, fmt.Errorf("steady publish: %w", err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	res.SteadyPublishPerSec = float64(soakSteadyOps) / elapsed.Seconds()
	res.SteadyAllocsPerOp = float64(after.Mallocs-before.Mallocs) / soakSteadyOps
	res.SteadyBytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / soakSteadyOps

	// Drain the burst to the broker, then wait for the node to have sealed
	// and marshaled at least one full LLA report *after* it — the
	// report-marshal path must hit its allocation high-water before RSS is
	// read. The old fixed 3.5s sleep under-waited whenever CI was loaded
	// (tickers fire late under contention) and over-waited everywhere else.
	if err := client.Flush(30 * time.Second); err != nil {
		return nil, fmt.Errorf("checkpoint flush: %w", err)
	}
	reportsBefore, _ := scrapeValue(adminAddr, "dynamoth_node_lla_reports_total")
	if err := awaitCounterAdvance(adminAddr, "dynamoth_node_lla_reports_total", reportsBefore, 1, 30*time.Second); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	// Min-until-stable sampling: a single reading races GC pacing and the
	// scavenger on both sides, so GC both processes and re-read until the
	// minimum stops improving (two consecutive samples without a >1% drop),
	// bounded at eight rounds. The forced-GC HTTP round trip is the natural
	// pacing between samples.
	stable := 0
	for i := 0; i < 8 && stable < 2; i++ {
		forceNodeGC(adminAddr)
		runtime.GC()
		debug.FreeOSMemory()
		server, client := readRSSKB(nodePid), readRSSKB(os.Getpid())
		improved := false
		if res.ServerRSSKB == 0 || server < res.ServerRSSKB {
			improved = improved || res.ServerRSSKB != 0 && float64(res.ServerRSSKB-server) > 0.01*float64(res.ServerRSSKB)
			res.ServerRSSKB = server
		}
		if res.ClientRSSKB == 0 || client < res.ClientRSSKB {
			improved = improved || res.ClientRSSKB != 0 && float64(res.ClientRSSKB-client) > 0.01*float64(res.ClientRSSKB)
			res.ClientRSSKB = client
		}
		if i == 0 || improved {
			stable = 0
		} else {
			stable++
		}
	}
	return res, nil
}
