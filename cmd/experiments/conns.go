package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/dynamoth/dynamoth/internal/workload"
)

// runConns is the C100k harness: it boots a real dynamoth-node subprocess,
// rams it with multiplexed connections from this process's epoll driver, and
// writes BENCH_conns.json comparing the reactor core at the largest
// achievable scale against the goroutine core at 10k. Connection counts are
// capped by RLIMIT_NOFILE on both sides of the socket (driver and server are
// separate processes, each paying one fd per connection); the JSON reports
// target vs achieved vs the fd limit so a capped run is never mistaken for a
// sustained one.
func runConns(target int) error {
	fmt.Println("=== C100k — connection-scale harness (reactor vs goroutine core) ===")
	fmt.Printf("target %d connections; driver and server fd limits cap the achievable count\n\n", target)

	binDir, err := os.MkdirTemp("", "dynamoth-conns-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(binDir)
	nodeBin, err := buildNodeBin(binDir)
	if err != nil {
		return err
	}

	reactor, err := runConnsCore(nodeBin, "reactor", target)
	if err != nil {
		return fmt.Errorf("reactor run: %w", err)
	}
	goroutineTarget := min(10_000, target)
	goroutine, err := runConnsCore(nodeBin, "goroutine", goroutineTarget)
	if err != nil {
		return fmt.Errorf("goroutine run: %w", err)
	}

	out := map[string]any{
		"description": "Connection-scale harness: a multiplexed epoll load driver (one process, " +
			"fd-indexed sockets, pipelined nonblocking connects) holds subscriber connections " +
			"against a real dynamoth-node subprocess under publish traffic and subscription churn. " +
			"'reactor' is the sharded epoll connection core at the largest fd-budget-achievable " +
			"scale; 'goroutine' is the portable goroutine-per-connection core at 10k for the " +
			"per-connection memory contrast. bytesPerConn is server RSS growth divided by held " +
			"connections; deliveryP99Us is publish-stamp-to-driver-receipt during churn.",
		"generated": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"note": "fd-limited container: RLIMIT_NOFILE hard cap bounds both processes; " +
				"achieved < target means the fd budget, not the broker, was the ceiling",
		},
		"reactor":   reactor,
		"goroutine": goroutine,
	}
	if reactor.Driver.Achieved > 0 && goroutine.Driver.Achieved > 0 &&
		goroutine.BytesPerConn > 0 && reactor.BytesPerConn > 0 {
		out["bytesPerConnRatio"] = goroutine.BytesPerConn / reactor.BytesPerConn
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_conns.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_conns.json")
	return nil
}

// connsCoreResult is one core's harness outcome.
type connsCoreResult struct {
	Core   string                    `json:"core"`
	Driver *workload.ConnBenchResult `json:"driver"`
	// Server-side figures: RSS before the ramp, at full connection count,
	// and the growth divided across connections.
	ServerRSSBaseKB int64   `json:"serverRssBaseKb"`
	ServerRSSPeakKB int64   `json:"serverRssPeakKb"`
	BytesPerConn    float64 `json:"bytesPerConn"`
	// Scraped broker counters: MetricsAtPeak with every connection still
	// held (the conns gauge is meaningful there), Metrics after the window
	// and driver teardown (the counters' final values; epoll families are
	// 0 on the goroutine core).
	MetricsAtPeak map[string]float64 `json:"metricsAtPeak"`
	Metrics       map[string]float64 `json:"metrics"`
}

// runConnsCore boots one node with the given core and drives it.
func runConnsCore(nodeBin, core string, target int) (*connsCoreResult, error) {
	fmt.Printf("--- core=%s target=%d ---\n", core, target)
	node, err := startNode(nodeBin, "-conn-core", core)
	if err != nil {
		return nil, err
	}
	defer node.Stop()
	respAddr, adminAddr := node.RespAddr, node.AdminAddr

	res := &connsCoreResult{Core: core}
	res.ServerRSSBaseKB = readRSSKB(node.Pid())

	// Spread client sockets over extra loopback IPs past the ~28k
	// ephemeral-port ceiling of a single (src,dst) pair.
	var srcs []string
	for i := 0; i <= target/20_000; i++ {
		srcs = append(srcs, fmt.Sprintf("127.0.0.%d", i+2))
	}

	res.Driver, err = workload.RunConnBench(workload.ConnBenchOptions{
		Addr:      respAddr,
		SourceIPs: srcs,
		Conns:     target,
		OnEstablished: func(achieved int) {
			res.ServerRSSPeakKB = readRSSKB(node.Pid())
			res.MetricsAtPeak = scrapeConnMetrics(adminAddr)
			fmt.Printf("established %d conns; server RSS %d KB → %d KB\n",
				achieved, res.ServerRSSBaseKB, res.ServerRSSPeakKB)
		},
	})
	if err != nil {
		return nil, err
	}
	if res.Driver.Achieved > 0 && res.ServerRSSPeakKB > res.ServerRSSBaseKB {
		res.BytesPerConn = float64(res.ServerRSSPeakKB-res.ServerRSSBaseKB) * 1024 / float64(res.Driver.Achieved)
	}
	res.Metrics = scrapeConnMetrics(adminAddr)

	fmt.Printf("achieved=%d (fd limit %d)  connect=%.0f conns/s  delivered=%d  churn=%d  behind=%d  p50=%.0fµs p99=%.0fµs  bytes/conn=%.0f\n\n",
		res.Driver.Achieved, res.Driver.FDLimit, res.Driver.ConnsPerSec,
		res.Driver.Delivered, res.Driver.ChurnOps, res.Driver.BehindSchedule,
		res.Driver.DeliveryP50us, res.Driver.DeliveryP99us, res.BytesPerConn)
	return res, nil
}

// scrapeConnMetrics pulls the connection-layer families off /metrics.
func scrapeConnMetrics(adminAddr string) map[string]float64 {
	return scrapeFamilies(adminAddr,
		"dynamoth_broker_conn", "dynamoth_broker_epoll", "dynamoth_broker_bytes")
}
