package main

// Shared harness plumbing for the subprocess benchmarks (conns, channels,
// scenarios): building and booting a real dynamoth-node, reading its RSS,
// scraping its /metrics, and — instead of sleeping guessed intervals —
// polling scraped state until the condition the sleep was standing in for
// actually holds.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// buildNodeBin compiles cmd/dynamoth-node into dir and returns the binary
// path.
func buildNodeBin(dir string) (string, error) {
	nodeBin := filepath.Join(dir, "dynamoth-node")
	build := exec.Command("go", "build", "-o", nodeBin, "./cmd/dynamoth-node")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return "", fmt.Errorf("building dynamoth-node: %w", err)
	}
	return nodeBin, nil
}

// nodeProc is one booted dynamoth-node subprocess.
type nodeProc struct {
	cmd       *exec.Cmd
	RespAddr  string
	AdminAddr string
}

// startNode boots a single-server node on loopback ephemeral ports and waits
// for its banner. The bootstrap plan's server set contains the node's own ID
// so bench channels are "right" under the plan (no SWITCH flood), and extra
// flags append to the baseline.
func startNode(nodeBin string, extra ...string) (*nodeProc, error) {
	args := []string{
		"-id", "bench",
		"-servers", "bench",
		"-listen", "127.0.0.1:0",
		"-admin-addr", "127.0.0.1:0",
		"-log-level", "error",
	}
	args = append(args, extra...)
	cmd := exec.Command(nodeBin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	respAddr, adminAddr, err := parseNodeBanner(stdout)
	if err != nil {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		return nil, err
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained
	return &nodeProc{cmd: cmd, RespAddr: respAddr, AdminAddr: adminAddr}, nil
}

func (n *nodeProc) Pid() int { return n.cmd.Process.Pid }

func (n *nodeProc) Stop() {
	n.cmd.Process.Kill() //nolint:errcheck
	n.cmd.Wait()         //nolint:errcheck
}

// parseNodeBanner extracts the RESP and admin addresses from the node's
// startup lines.
func parseNodeBanner(r io.Reader) (resp, admin string, err error) {
	sc := bufio.NewScanner(r)
	deadline := time.Now().Add(15 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "serving RESP on "); i >= 0 {
			rest := line[i+len("serving RESP on "):]
			resp = strings.Fields(rest)[0]
		}
		if i := strings.Index(line, "admin http on "); i >= 0 {
			admin = strings.TrimSpace(line[i+len("admin http on "):])
		}
		if resp != "" && admin != "" {
			return resp, admin, nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return "", "", fmt.Errorf("node banner not found (resp=%q admin=%q)", resp, admin)
}

// readRSSKB reads VmRSS from /proc/<pid>/status (0 if unavailable).
func readRSSKB(pid int) int64 {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				kb, _ := strconv.ParseInt(fields[0], 10, 64)
				return kb
			}
		}
	}
	return 0
}

// scrapeFamilies pulls every sample whose name starts with one of the
// prefixes off the node's /metrics, keyed by the full name including labels.
func scrapeFamilies(adminAddr string, prefixes ...string) map[string]float64 {
	out := map[string]float64{}
	resp, err := http.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		matched := false
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out
}

// scrapeValue reads one family's current value off /metrics.
func scrapeValue(adminAddr, name string) (float64, bool) {
	v, ok := scrapeFamilies(adminAddr, name)[name]
	return v, ok
}

// awaitMetric polls /metrics until pred accepts the named family's value, at
// a cadence that keeps the admin endpoint unbothered. It replaces the fixed
// sleeps these harnesses used to guess settle intervals with: the wait ends
// the moment the condition the sleep stood in for is actually true, and a
// condition that never comes is a loud error instead of a silently
// under-slept measurement.
func awaitMetric(adminAddr, name string, timeout time.Duration, pred func(float64) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if v, ok := scrapeValue(adminAddr, name); ok && pred(v) {
			return nil
		}
		if time.Now().After(deadline) {
			v, _ := scrapeValue(adminAddr, name)
			return fmt.Errorf("timed out after %v waiting on %s (last %v)", timeout, name, v)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// awaitCounterAdvance waits until the named counter exceeds from by at least
// delta — e.g. "the node has built delta more LLA reports than it had at
// from".
func awaitCounterAdvance(adminAddr, name string, from, delta float64, timeout time.Duration) error {
	return awaitMetric(adminAddr, name, timeout, func(v float64) bool { return v >= from+delta })
}

// fetchWaterfall reads the node's /debug/latency document as generic JSON
// (the per-stage breakdown scenario outputs embed verbatim).
func fetchWaterfall(adminAddr string) (map[string]any, error) {
	resp, err := http.Get("http://" + adminAddr + "/debug/latency")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/latency: %s", resp.Status)
	}
	var wf map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&wf); err != nil {
		return nil, err
	}
	return wf, nil
}

// forceNodeGC makes the node subprocess run a GC and return freed pages to
// the OS (its /debug/freemem admin route), so readRSSKB sees the live set,
// not the allocation high-water mark (best effort).
func forceNodeGC(adminAddr string) {
	resp, err := http.Get("http://" + adminAddr + "/debug/freemem")
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
