package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/trace"
)

// TestAdminEndpointIntegration builds the real dynamoth-node binary, boots it
// with -admin-addr 127.0.0.1:0, discovers the bound port from stdout, and
// scrapes /metrics and /healthz over HTTP — the same flow the CI obs job and
// a production Prometheus would use. The test fails on malformed exposition.
func TestAdminEndpointIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec-based integration test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dynamoth-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dynamoth-node: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-id", "pub1",
		"-listen", "127.0.0.1:0",
		"-admin-addr", "127.0.0.1:0",
		"-servers", "pub1",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting node: %v", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The node prints "admin http on <addr>" once the admin listener is up.
	adminAddr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "admin http on "); ok {
				adminAddr <- strings.TrimSpace(rest)
			}
		}
	}()
	var addr string
	select {
	case addr = <-adminAddr:
	case <-time.After(10 * time.Second):
		t.Fatal("node never announced its admin address")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	fams, err := obs.ValidateExposition(body)
	if err != nil {
		t.Fatalf("/metrics malformed: %v\n%s", err, body)
	}
	for _, want := range []string{
		"dynamoth_broker_published_total",
		"dynamoth_broker_sessions",
		"dynamoth_plan_version",
		"dynamoth_e2e_latency_seconds",
		"dynamoth_reconfig_plan_applies_total",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("/metrics missing family %s (got %v)", want, fams)
		}
	}

	code, body = get("/statusz")
	if code != http.StatusOK || !strings.Contains(body, `"planVersion"`) {
		t.Fatalf("/statusz = %d %q", code, body)
	}

	// The flight-recorder endpoints: a freshly booted node has few (possibly
	// zero) events, but the stream must already be schema-valid JSONL and the
	// timeline document a JSON array.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/events", addr))
	if err != nil {
		t.Fatalf("GET /debug/events: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Errorf("/debug/events Content-Type = %q", ct)
	}
	if _, err := trace.ValidateJSONL(resp.Body); err != nil {
		t.Errorf("/debug/events stream invalid: %v", err)
	}
	resp.Body.Close()

	code, body = get("/debug/rebalances")
	if code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("/debug/rebalances = %d %q", code, body)
	}
}
