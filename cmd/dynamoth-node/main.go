// Command dynamoth-node runs one Dynamoth pub/sub server node: a Redis-like
// broker served over RESP/TCP, with the collocated local load analyzer and
// dispatcher (paper Figure 1). Nodes are independent; the dispatcher reaches
// peer nodes through their TCP addresses for reconfiguration forwarding.
//
// Usage:
//
//	dynamoth-node -id pub1 -listen :6379 \
//	    -peer pub2=host2:6379 -peer pub3=host3:6379 \
//	    -servers pub1,pub2,pub3
//
// -servers lists the bootstrap plan's server set (must match on every node
// and on the load balancer).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/buildinfo"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/server"
	"github.com/dynamoth/dynamoth/internal/trace"
	"github.com/dynamoth/dynamoth/internal/transport"
)

type peerList map[string]string

func (p peerList) String() string {
	parts := make([]string, 0, len(p))
	for id, addr := range p {
		parts = append(parts, id+"="+addr)
	}
	return strings.Join(parts, ",")
}

func (p peerList) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok || id == "" || addr == "" {
		return fmt.Errorf("expected id=host:port, got %q", v)
	}
	p[id] = addr
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamoth-node:", err)
		os.Exit(1)
	}
}

func run() error {
	peers := peerList{}
	var (
		id      = flag.String("id", "pub1", "this node's server ID in plans")
		listen  = flag.String("listen", ":6379", "RESP listen address")
		servers = flag.String("servers", "pub1", "comma-separated bootstrap server IDs (plan 0)")
		nodeNum = flag.Uint("node", 0xD001, "unique numeric node ID for control envelopes")
		maxBps  = flag.Float64("max-bps", 1.25e6, "theoretical max outgoing bandwidth T_i (bytes/s)")
		dialTO  = flag.Duration("dial-timeout", 5*time.Second, "deadline for dialing peer nodes (forwarding)")
		admin   = flag.String("admin-addr", "", "admin HTTP listen address for /metrics, /healthz, /statusz, /debug/pprof, /debug/events, /debug/rebalances, /debug/latency, /debug/freemem (empty = disabled)")
		logLvl  = flag.String("log-level", "warn", "structured log level on stderr (debug, info, warn, error)")
		ccore   = flag.String("conn-core", "auto", "connection core: auto (reactor where available), goroutine, or reactor")
		reuse   = flag.Bool("reuseport", false, "set SO_REUSEPORT on the RESP listener (linux; lets several nodes share one address)")
		llaCap  = flag.Int("lla-channel-cap", 0, "distinct channels the LLA tracks per time unit; overflow folds into an aggregate bucket (0 = default, negative = unbounded)")
		topkCap = flag.Int("topk-cap", 0, "channels held by the hot-channel tracker (0 = default, negative = unbounded)")
		rcap    = flag.Int("replay-cap", 0, "per-channel replay ring depth for cursor-based resumable subscription (0 = default, negative = disabled)")
		rchans  = flag.Int("replay-channels", 0, "channels that may hold a replay ring at once (0 = default, negative = unbounded)")
	)
	flag.Var(peers, "peer", "peer node as id=host:port (repeatable)")
	flag.Parse()

	level, err := trace.ParseLevel(*logLvl)
	if err != nil {
		return fmt.Errorf("parsing -log-level: %w", err)
	}
	core, err := broker.ParseConnCore(*ccore)
	if err != nil {
		return fmt.Errorf("parsing -conn-core: %w", err)
	}
	// Best-effort: lift the fd soft limit toward the hard limit so the
	// reactor's connection budget is the machine's, not the shell's default.
	transport.RaiseFDLimit(0) //nolint:errcheck
	logger := trace.NewStderrLogger(level)
	rec := trace.NewRecorder(0)

	bootstrap := strings.Split(*servers, ",")
	initial := plan.New(bootstrap...)
	initial.Version = 1

	dialer := transport.NewTCPDialer(nil)
	dialer.DialTimeout = *dialTO
	for pid, addr := range peers {
		dialer.AddServer(pid, addr)
	}
	fwd := transport.NewPooledForwarder(dialer)
	defer fwd.Close()

	n, err := server.New(server.Options{
		ID:             *id,
		NodeNum:        uint32(*nodeNum),
		Initial:        initial,
		Forwarder:      fwd,
		MaxOutgoingBps: *maxBps,
		LLAChannelCap:  *llaCap,
		TopKCap:        *topkCap,
		ReplayDepth:    *rcap,
		ReplayChannels: *rchans,
		PublishReports: true,
		Recorder:       rec,
		Logger:         logger,
		ConnCore:       core,
	})
	if err != nil {
		return err
	}
	defer n.Close()

	ln, err := transport.Listen(*listen, transport.ListenConfig{ReusePort: *reuse})
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	fmt.Printf("dynamoth-node %s (%s) serving RESP on %s (conn-core: %s, peers: %s)\n",
		*id, buildinfo.Version, ln.Addr(), n.ConnCore(), peers.String())

	if *admin != "" {
		srv, aln, err := obs.Serve(*admin, obs.NewAdminMux(n.Registry(), n.Status,
			obs.Route{Pattern: "/debug/events", Handler: rec.EventsHandler()},
			obs.Route{Pattern: "/debug/rebalances", Handler: rec.RebalancesHandler()},
			// Per-stage latency waterfall: e2e plus ingress/fanout/flush
			// summaries, slow channels, and per-region delivery latency.
			obs.Route{Pattern: "/debug/latency", Handler: obs.JSONHandler(
				func() any { return n.Waterfall() })},
			// Forces a GC and returns freed pages to the OS, so memory
			// harnesses (the channel soak) can read a live-set RSS instead
			// of the allocation high-water mark.
			obs.Route{Pattern: "/debug/freemem", Handler: http.HandlerFunc(
				func(w http.ResponseWriter, _ *http.Request) {
					debug.FreeOSMemory()
					fmt.Fprintln(w, "ok")
				})}))
		if err != nil {
			ln.Close()
			return fmt.Errorf("admin listen %s: %w", *admin, err)
		}
		defer srv.Close()
		// Printed on its own line so harnesses passing -admin-addr :0 can
		// discover the bound port.
		fmt.Printf("admin http on %s\n", aln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- n.ServeTCP(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sigc:
		fmt.Printf("received %v, shutting down\n", s)
		ln.Close()
		return nil
	}
}
