// Command dynamoth-lb runs the Dynamoth load balancer against a set of
// dynamoth-node daemons: it subscribes to every node's LLA report channel,
// runs the two-step rebalancer (Algorithm 1 + Algorithm 2 + low-load
// release) and publishes new plans on every node's plan channel.
//
// Usage:
//
//	dynamoth-lb -node pub1=host1:6379 -node pub2=host2:6379
//
// The node set is fixed for a daemon instance (the elastic spawn/despawn of
// the paper needs a cloud provider; the in-process cluster package and the
// experiments exercise that path). The LB still migrates and replicates
// channels across the given pool, so a static deployment gets the full
// hierarchical balancing.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/dynamoth/dynamoth/internal/balancer"
	"github.com/dynamoth/dynamoth/internal/buildinfo"
	"github.com/dynamoth/dynamoth/internal/lla"
	"github.com/dynamoth/dynamoth/internal/message"
	"github.com/dynamoth/dynamoth/internal/obs"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/trace"
	"github.com/dynamoth/dynamoth/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamoth-lb:", err)
		os.Exit(1)
	}
}

type nodeList map[string]string

func (n nodeList) String() string {
	parts := make([]string, 0, len(n))
	for id, addr := range n {
		parts = append(parts, id+"="+addr)
	}
	return strings.Join(parts, ",")
}

func (n nodeList) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok || id == "" || addr == "" {
		return fmt.Errorf("expected id=host:port, got %q", v)
	}
	n[id] = addr
	return nil
}

func run() error {
	nodes := nodeList{}
	var (
		twait      = flag.Duration("twait", 10*time.Second, "minimum time between plan generations")
		maxBps     = flag.Float64("max-bps", 1.25e6, "assumed server capacity for unreported nodes")
		dialTO     = flag.Duration("dial-timeout", 5*time.Second, "deadline for dialing nodes")
		detect     = flag.Bool("detect", true, "detect node failures (PING probes + report staleness) and repair the plan")
		probeEvery = flag.Duration("probe-interval", 2*time.Second, "liveness probe interval")
		staleAfter = flag.Duration("stale-after", 12*time.Second, "report silence that marks a node dead")
		admin      = flag.String("admin-addr", "", "admin HTTP listen address for /metrics, /healthz, /statusz, /debug/pprof, /debug/events, /debug/rebalances (empty = disabled)")
		logLvl     = flag.String("log-level", "info", "structured log level on stderr (debug, info, warn, error)")
	)
	flag.Var(nodes, "node", "pub/sub node as id=host:port (repeatable)")
	flag.Parse()
	if len(nodes) == 0 {
		return fmt.Errorf("at least one -node required")
	}

	level, err := trace.ParseLevel(*logLvl)
	if err != nil {
		return fmt.Errorf("parsing -log-level: %w", err)
	}
	logger := trace.NewStderrLogger(level)
	log := trace.Component(logger, "lb")
	rec := trace.NewRecorder(0)

	ids := make([]string, 0, len(nodes))
	addrs := make(map[plan.ServerID]string, len(nodes))
	for id, addr := range nodes {
		ids = append(ids, id)
		addrs[id] = addr
	}
	initial := plan.New(ids...)
	initial.Version = 1

	dialer := transport.NewTCPDialer(addrs)
	dialer.DialTimeout = *dialTO
	reports := make(chan *lla.Report, 256)

	// One subscription per node for its report channel; plan publications
	// reuse the same connections. connsMu covers the plan-publish and
	// failure-fence goroutines.
	var connsMu sync.Mutex
	conns := make(map[plan.ServerID]transport.Conn, len(ids))
	for _, id := range ids {
		conn, err := dialer.Dial(id, reportHandler{reports: reports, log: log})
		if err != nil {
			return fmt.Errorf("connecting to node %s: %w", id, err)
		}
		defer conn.Close()
		if err := conn.Subscribe(plan.ReportChannel); err != nil {
			return fmt.Errorf("subscribing reports on %s: %w", id, err)
		}
		conns[id] = conn
	}

	cfg := balancer.DefaultConfig()
	cfg.TWait = *twait
	cfg.MaxServers = len(ids)
	cfg.MinServers = len(ids) // fixed pool: never release servers
	pinned := func(s string) bool { return s == ids[0] }
	planner := balancer.NewPlanner(cfg, plan.IsControlChannel, pinned, *maxBps)

	gen := message.NewGenerator(0xB1B)
	publishPlan := func(p *plan.Plan) {
		data, err := p.Marshal()
		if err != nil {
			return
		}
		env := &message.Envelope{
			Type:    message.TypePlan,
			ID:      gen.Next(),
			Channel: plan.PlanChannel,
			Payload: data,
		}
		payload := env.Marshal()
		connsMu.Lock()
		for id, conn := range conns {
			push := rec.StartSpan(trace.KindPlanPush, p.Version, id)
			if err := conn.Publish(plan.PlanChannel, payload); err != nil {
				push.End("error", 0)
				log.Warn("plan publish failed",
					slog.Uint64("plan", p.Version), slog.String("node", id), slog.Any("err", err))
				continue
			}
			push.End("", 0)
		}
		connsMu.Unlock()
		log.Info("plan published",
			slog.Uint64("plan", p.Version), slog.Int("channels", len(p.Channels)))
	}

	orchOpts := balancer.OrchestratorOptions{
		Planner:       planner,
		Config:        cfg,
		Initial:       initial,
		Reports:       reports,
		PublishPlan:   publishPlan,
		DefaultMaxBps: *maxBps,
		Recorder:      rec,
		Logger:        logger,
	}
	if *detect {
		orchOpts.Detect = &lla.DetectorConfig{StaleAfter: *staleAfter, ProbeMisses: 3}
		orchOpts.Probe = func(id plan.ServerID) error {
			return dialer.Probe(id, 2*time.Second)
		}
		orchOpts.ProbeInterval = *probeEvery
		orchOpts.OnServerDead = func(id plan.ServerID) {
			log.Warn("node fenced", slog.String("node", id))
			connsMu.Lock()
			if conn, ok := conns[id]; ok {
				conn.Close()
				delete(conns, id)
			}
			connsMu.Unlock()
		}
	}
	orch := balancer.NewOrchestrator(orchOpts)
	go orch.Run()
	defer orch.Stop()

	if *admin != "" {
		reg := obs.NewRegistry()
		orch.RegisterMetrics(reg)
		srv, aln, err := obs.Serve(*admin, obs.NewAdminMux(reg, orch.Status,
			obs.Route{Pattern: "/debug/events", Handler: rec.EventsHandler()},
			obs.Route{Pattern: "/debug/rebalances", Handler: rec.RebalancesHandler()}))
		if err != nil {
			return fmt.Errorf("admin listen %s: %w", *admin, err)
		}
		defer srv.Close()
		fmt.Printf("admin http on %s\n", aln.Addr())
	}

	fmt.Printf("dynamoth-lb (%s) balancing %d nodes: %s\n", buildinfo.Version, len(ids), nodes.String())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	return nil
}

// reportHandler feeds LLA reports into the orchestrator.
type reportHandler struct {
	reports chan<- *lla.Report
	log     *slog.Logger
}

func (h reportHandler) OnMessage(_ string, payload []byte) {
	env, err := message.Unmarshal(payload)
	if err != nil || env.Type != message.TypeLoadReport {
		return
	}
	r, err := lla.UnmarshalReport(env.Payload)
	if err != nil {
		return
	}
	select {
	case h.reports <- r:
	default:
	}
}

func (h reportHandler) OnDisconnect(err error) {
	h.log.Warn("node connection lost", slog.Any("err", err))
}
