package dynamoth

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/dynamoth/dynamoth/internal/broker"
	"github.com/dynamoth/dynamoth/internal/dispatcher"
	"github.com/dynamoth/dynamoth/internal/plan"
	"github.com/dynamoth/dynamoth/internal/trace"
	"github.com/dynamoth/dynamoth/internal/transport"
)

// testDeployment is a minimal live deployment: brokers with dispatchers,
// mem transport, no latency.
type testDeployment struct {
	brokers     map[plan.ServerID]*broker.Broker
	dispatchers map[plan.ServerID]*dispatcher.Dispatcher
	dialer      *transport.MemDialer
	servers     []string
}

func newTestDeployment(t *testing.T, servers ...string) *testDeployment {
	t.Helper()
	d := &testDeployment{
		brokers:     make(map[plan.ServerID]*broker.Broker),
		dispatchers: make(map[plan.ServerID]*dispatcher.Dispatcher),
		servers:     servers,
	}
	initial := plan.New(servers...)
	initial.Version = 1
	for _, s := range servers {
		// Replay rings on, as in a default server.Node deployment.
		d.brokers[s] = broker.New(broker.Options{Name: s, ReplayDepth: 256})
	}
	d.dialer = transport.NewMemDialer(d.brokers, transport.MemDialerOptions{})
	fwd := dispatcher.ForwarderFunc(func(server plan.ServerID, channel string, payload []byte) error {
		b := d.brokers[server]
		if b == nil {
			return fmt.Errorf("no broker %s", server)
		}
		b.Publish(channel, payload)
		return nil
	})
	for i, s := range servers {
		disp, err := dispatcher.New(dispatcher.Options{
			Self: s, Node: uint32(10 + i), Initial: initial.Clone(),
			Broker: d.brokers[s], Forwarder: fwd,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.dispatchers[s] = disp
	}
	t.Cleanup(func() {
		for _, disp := range d.dispatchers {
			disp.Close()
		}
		d.dialer.Close()
		for _, b := range d.brokers {
			b.Close()
		}
	})
	return d
}

func (d *testDeployment) client(t *testing.T, node uint32) *Client {
	t.Helper()
	c, err := ConnectWithDialer(d.dialer, d.servers, Config{NodeID: node})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func (d *testDeployment) applyPlan(p *plan.Plan) {
	for _, disp := range d.dispatchers {
		disp.ApplyPlan(p.Clone())
	}
}

func recvMsg(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("subscription stream closed")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func TestClientPubSubSingleServer(t *testing.T) {
	d := newTestDeployment(t, "s1")
	pub := d.client(t, 100)
	sub := d.client(t, 101)

	msgs, err := sub.Subscribe("room")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("room", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	m := recvMsg(t, msgs)
	if m.Channel != "room" || string(m.Payload) != "hi" || m.Publisher != 100 {
		t.Fatalf("message=%+v", m)
	}
	if s := sub.Stats(); s.Received != 1 {
		t.Fatalf("stats=%+v", s)
	}
}

func TestClientSelfDelivery(t *testing.T) {
	// A player subscribes to its own tile and must see its own updates —
	// the paper's response-time measurement depends on this.
	d := newTestDeployment(t, "s1", "s2")
	c := d.client(t, 200)
	msgs, err := c.Subscribe("tile-1-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("tile-1-1", []byte("pos")); err != nil {
		t.Fatal(err)
	}
	m := recvMsg(t, msgs)
	if m.Publisher != 200 {
		t.Fatalf("message=%+v", m)
	}
}

func TestClientMultiServerFallbackRouting(t *testing.T) {
	d := newTestDeployment(t, "s1", "s2", "s3")
	sub := d.client(t, 300)
	pub := d.client(t, 301)
	// Several channels, hashing to various servers: both clients must
	// agree on routing with no explicit plan.
	for i := 0; i < 8; i++ {
		ch := fmt.Sprintf("channel-%d", i)
		msgs, err := sub.Subscribe(ch)
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(ch, []byte(ch)); err != nil {
			t.Fatal(err)
		}
		if m := recvMsg(t, msgs); string(m.Payload) != ch {
			t.Fatalf("channel %s: %+v", ch, m)
		}
	}
}

func TestClientUnsubscribe(t *testing.T) {
	d := newTestDeployment(t, "s1")
	c := d.client(t, 400)
	msgs, err := c.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe("x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-msgs; ok {
		t.Fatal("stream not closed on unsubscribe")
	}
	if err := c.Unsubscribe("x"); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("double unsubscribe err=%v", err)
	}
}

func TestClientDuplicateSubscribeSameStream(t *testing.T) {
	d := newTestDeployment(t, "s1")
	c := d.client(t, 500)
	a, _ := c.Subscribe("x")
	b, _ := c.Subscribe("x")
	if a != b {
		t.Fatal("duplicate subscribe returned a different stream")
	}
}

func TestClientFollowsMigration(t *testing.T) {
	// Move a channel between servers under live traffic; the subscriber
	// must receive every message exactly once and end up on the new server.
	d := newTestDeployment(t, "s1", "s2")
	sub := d.client(t, 600)
	pub := d.client(t, 601)

	msgs, err := sub.Subscribe("game")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("game", []byte("m0")); err != nil {
		t.Fatal(err)
	}
	recvMsg(t, msgs)

	// Migrate: explicit plan moves "game" to the server it is NOT on.
	initial := plan.New("s1", "s2")
	from := initial.Home("game")
	to := "s1"
	if from == "s1" {
		to = "s2"
	}
	next := plan.New("s1", "s2")
	next.Version = 2
	next.Set("game", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{to}})
	d.applyPlan(next)

	// Publish a stream of messages; all must arrive despite the move.
	for i := 1; i <= 10; i++ {
		if err := pub.Publish("game", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		m := recvMsg(t, msgs)
		if string(m.Payload) != fmt.Sprintf("m%d", i) {
			t.Fatalf("message %d: got %q", i, m.Payload)
		}
	}

	// Eventually both clients learned the new mapping and the old broker
	// sees no more subscribers on the channel.
	deadline := time.Now().Add(2 * time.Second)
	for d.brokers[from].Subscribers("game") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber never left the old server %s", from)
		}
		if err := pub.Publish("game", []byte("nudge")); err != nil {
			t.Fatal(err)
		}
		recvMsg(t, msgs)
		time.Sleep(10 * time.Millisecond)
	}
	if pub.Stats().Redirects == 0 && sub.Stats().Redirects == 0 {
		t.Fatal("no redirects processed during migration")
	}
}

func TestClientAllSubscribersReplication(t *testing.T) {
	// Publisher picks one random replica per publication; subscriber
	// subscribes everywhere and sees each message exactly once.
	d := newTestDeployment(t, "s1", "s2", "s3")
	next := plan.New("s1", "s2", "s3")
	next.Version = 2
	next.Set("hot", plan.Entry{Strategy: plan.StrategyAllSubscribers, Servers: []plan.ServerID{"s1", "s2", "s3"}})
	d.applyPlan(next)

	sub := d.client(t, 700)
	pub := d.client(t, 701)
	// Clients learn the entry lazily; seed them by publishing/subscribing.
	msgs, err := sub.Subscribe("hot")
	if err != nil {
		t.Fatal(err)
	}
	// The subscriber initially lands on the hash-home server only; the
	// dispatcher's switch notification upgrades it to all replicas.
	const totalMsgs = 30
	got := 0
	for i := 0; i < totalMsgs; i++ {
		if err := pub.Publish("hot", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		select {
		case <-msgs:
			got++
		case <-time.After(500 * time.Millisecond):
			t.Fatalf("message %d lost", i)
		}
	}
	if got != totalMsgs {
		t.Fatalf("received %d of %d", got, totalMsgs)
	}
	// After the lazy update, the subscriber must be on all three brokers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		total := 0
		for _, b := range d.brokers {
			total += b.Subscribers("hot")
		}
		if total == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber on %d replicas, want 3", total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dups := sub.Stats().Duplicates; dups > totalMsgs {
		t.Fatalf("excessive duplicates: %d", dups)
	}
}

func TestClientAllPublishersReplication(t *testing.T) {
	d := newTestDeployment(t, "s1", "s2", "s3")
	next := plan.New("s1", "s2", "s3")
	next.Version = 2
	next.Set("bcast", plan.Entry{Strategy: plan.StrategyAllPublishers, Servers: []plan.ServerID{"s1", "s2", "s3"}})
	d.applyPlan(next)

	subs := make([]<-chan Message, 6)
	for i := range subs {
		c := d.client(t, uint32(800+i))
		msgs, err := c.Subscribe("bcast")
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = msgs
	}
	pub := d.client(t, 899)
	// First publish may be pre-update (hash fallback); dispatcher forwards
	// it to all replicas, so delivery still holds.
	for i := 0; i < 5; i++ {
		if err := pub.Publish("bcast", []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, ch := range subs {
		for j := 0; j < 5; j++ {
			m := recvMsg(t, ch)
			if string(m.Payload) != fmt.Sprintf("b%d", j) {
				t.Fatalf("subscriber %d msg %d: %q", i, j, m.Payload)
			}
		}
	}
	// After its redirect, the publisher publishes to all three replicas.
	deadline := time.Now().Add(2 * time.Second)
	for {
		before := pub.Stats().Published
		if err := pub.Publish("bcast", []byte("probe")); err != nil {
			t.Fatal(err)
		}
		if pub.Stats().Published-before == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("publisher sends %d copies, want 3", pub.Stats().Published-before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Drain the probe messages.
	for _, ch := range subs {
		for {
			select {
			case <-ch:
				continue
			case <-time.After(50 * time.Millisecond):
			}
			break
		}
	}
}

func TestClientEntryTimeoutRevertsToHashing(t *testing.T) {
	d := newTestDeployment(t, "s1", "s2")
	c, err := ConnectWithDialer(d.dialer, d.servers, Config{
		NodeID:       900,
		EntryTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Install an entry via a fake switch notification path: publish to a
	// migrated channel to earn a redirect.
	next := plan.New("s1", "s2")
	home := next.Home("temp")
	other := "s1"
	if home == "s1" {
		other = "s2"
	}
	next.Version = 2
	next.Set("temp", plan.Entry{Strategy: plan.StrategySingle, Servers: []plan.ServerID{other}})
	d.applyPlan(next)
	if err := c.Publish("temp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	hasEntry := func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		_, _, ok := c.local.Peek("temp")
		return ok
	}
	deadline := time.Now().Add(2 * time.Second)
	for !hasEntry() {
		if time.Now().After(deadline) {
			t.Fatal("redirect never installed a local entry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Entry must expire after the timeout (not subscribed).
	deadline = time.Now().Add(3 * time.Second)
	for hasEntry() {
		if time.Now().After(deadline) {
			t.Fatal("entry never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestClientClosedOperations(t *testing.T) {
	d := newTestDeployment(t, "s1")
	c := d.client(t, 1000)
	msgs, _ := c.Subscribe("x")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-msgs; ok {
		t.Fatal("stream not closed on Close")
	}
	if err := c.Publish("x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish err=%v", err)
	}
	if _, err := c.Subscribe("y"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe err=%v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close err=%v", err)
	}
}

func TestConnectValidation(t *testing.T) {
	if _, err := Connect(Config{}); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err=%v", err)
	}
	if _, err := ConnectWithDialer(nil, nil, Config{}); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err=%v", err)
	}
}

func TestClientOverTCP(t *testing.T) {
	// Full stack over real sockets: broker + RESP + TCP dialer + client.
	b := broker.New(broker.Options{Name: "tcp1"})
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		broker.Serve(ln, b) //nolint:errcheck
	}()
	t.Cleanup(func() {
		b.Close()
		ln.Close()
		<-served
	})

	c, err := Connect(Config{Addrs: map[string]string{"tcp1": ln.Addr().String()}, NodeID: 1100})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msgs, err := c.Subscribe("wire")
	if err != nil {
		t.Fatal(err)
	}
	// Subscription lands asynchronously on the TCP path; retry.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := c.Publish("wire", []byte("over-tcp")); err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-msgs:
			if string(m.Payload) != "over-tcp" {
				t.Fatalf("payload=%q", m.Payload)
			}
			return
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("no delivery over TCP")
			}
		}
	}
}

func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestClientRepairsAfterSlowConsumerKill(t *testing.T) {
	// The broker kills a subscriber that cannot keep up (Redis
	// client-output-buffer-limit). The client library must notice the
	// disconnect and re-establish its subscriptions.
	b := broker.New(broker.Options{Name: "s1", OutputBuffer: 4})
	defer b.Close()
	dialer := transport.NewMemDialer(map[plan.ServerID]*broker.Broker{"s1": b}, transport.MemDialerOptions{})
	defer dialer.Close()

	sub, err := ConnectWithDialer(dialer, []string{"s1"}, Config{
		NodeID:          1500,
		SubscribeBuffer: 4096,
		EntryTimeout:    4 * time.Second, // fast sweeps => fast repair
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	msgs, err := sub.Subscribe("burst")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ConnectWithDialer(dialer, []string{"s1"}, Config{NodeID: 1501})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Saturate: the subscriber's session buffer (4) overflows.
	for i := 0; i < 64; i++ {
		if err := pub.Publish("burst", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	drainFor(msgs, 100*time.Millisecond)

	// After the kill, the repair sweep must resubscribe; publications
	// eventually flow again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := pub.Publish("burst", []byte("again")); err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-msgs:
			if string(m.Payload) == "again" {
				return // repaired
			}
		case <-time.After(200 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription never repaired after slow-consumer kill")
		}
	}
}

func drainFor(ch <-chan Message, d time.Duration) {
	deadline := time.After(d)
	for {
		select {
		case <-ch:
		case <-deadline:
			return
		}
	}
}

// TestDedupWindowEvictionFlushesSuppressed pins down the chaos-suite
// accounting invariant under a tiny window cap: every suppressed duplicate
// must reach the flight recorder exactly once — through a normal close, a
// capacity-eviction flush, or the Close flush — so the sum of
// KindDedupClose event values always equals the DuplicatesSuppressed
// counter even when windows are evicted mid-migration.
func TestDedupWindowEvictionFlushesSuppressed(t *testing.T) {
	d := newTestDeployment(t, "s1")
	rec := trace.NewRecorder(4096)
	c, err := ConnectWithDialer(d.dialer, d.servers, Config{
		NodeID:         77,
		DedupWindowCap: 16, // one window per shard: heavy eviction below
		Recorder:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Open far more windows than the cap and attribute duplicates to each
	// immediately after opening (before the next open can evict it), so
	// every suppressed duplicate lands in some window's count.
	const chans = 64
	var issued int64
	for i := 0; i < chans; i++ {
		ch := fmt.Sprintf("migrating-%d", i)
		c.mu.Lock()
		c.openWindowLocked(ch, 1, "switch")
		c.mu.Unlock()
		for j := 0; j <= i%3; j++ {
			c.noteDuplicate(ch)
			issued++
		}
	}

	if ev := c.windows.Stats().Evictions; ev == 0 {
		t.Fatalf("no window evictions with cap 16 and %d channels", chans)
	}
	// Capacity evictions must have flushed their windows to the recorder
	// with the "evicted" annotation.
	flushed := false
	for _, e := range rec.Events(0) {
		if e.Kind == trace.KindDedupClose && e.Detail == "evicted" {
			flushed = true
			break
		}
	}
	if !flushed {
		t.Error("no KindDedupClose event with detail \"evicted\" after capacity evictions")
	}

	// Close flushes the surviving windows; afterwards the timeline sum must
	// equal the client counter — nothing double-counted, nothing dropped.
	c.Close()
	if got := c.suppressed.Load(); int64(got) != issued {
		t.Fatalf("suppressed counter = %d, want %d (single-threaded opens cannot race eviction)", got, issued)
	}
	if got, want := rec.Sum(trace.KindDedupClose), issued; got != want {
		t.Errorf("sum of KindDedupClose values = %d, want %d (suppressed counter)", got, want)
	}
	if opens, closes := rec.Count(trace.KindDedupOpen), rec.Count(trace.KindDedupClose); closes != opens {
		t.Errorf("dedup closes = %d, opens = %d; every window must close exactly once", closes, opens)
	}
}

// TestReplayedDuplicateAfterWindowEviction pins the interop between the
// replay machinery and dedup-window accounting: a genuine replayed duplicate
// (the broker re-sends an already-delivered frame on a cursor resubscribe)
// arriving while its channel's window is open is counted in that window; the
// same duplicate arriving AFTER the window was capacity-evicted is counted
// nowhere — so Σ dedup_close stays equal to the DuplicatesSuppressed counter
// no matter when eviction lands relative to the replay.
func TestReplayedDuplicateAfterWindowEviction(t *testing.T) {
	d := newTestDeployment(t, "s1")
	rec := trace.NewRecorder(4096)
	c, err := ConnectWithDialer(d.dialer, d.servers, Config{
		NodeID:         78,
		DedupWindowCap: 16,
		Recorder:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := c.Subscribe("replayed")
	if err != nil {
		t.Fatal(err)
	}
	pub := d.client(t, 79)
	if err := pub.Publish("replayed", []byte("m1")); err != nil {
		t.Fatal(err)
	}
	recvMsg(t, msgs)

	// rewindTracker forgets that the frame was consumed, so the next cursor
	// resubscribe asks the broker to replay it — producing a real replayed
	// duplicate through the full delivery pipeline (same envelope ID, caught
	// by the deduper).
	c.mu.Lock()
	sub := c.subs["replayed"]
	c.mu.Unlock()
	rewindTracker := func() {
		sub.track.mu.Lock()
		for _, tr := range sub.track.epochs {
			tr.contig = 0
			tr.pending = nil
		}
		sub.track.mu.Unlock()
	}
	resubscribe := func() replayOutcome {
		t.Helper()
		c.mu.Lock()
		out, err := c.resubscribeOnLocked("replayed", []plan.ServerID{"s1"}, sub)
		c.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		if !out.attempted || out.replayed != 1 {
			t.Fatalf("replay outcome %+v, want 1 frame replayed", out)
		}
		return out
	}
	waitDuplicates := func(n uint64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for c.Stats().Duplicates < n {
			if time.Now().After(deadline) {
				t.Fatalf("duplicates=%d, want %d", c.Stats().Duplicates, n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Replayed duplicate #1 arrives while the channel's window is open: it is
	// attributed to the window.
	c.mu.Lock()
	c.openWindowLocked("replayed", 1, "switch")
	c.mu.Unlock()
	rewindTracker()
	resubscribe()
	waitDuplicates(1)
	if got := c.Stats().DuplicatesSuppressed; got != 1 {
		t.Fatalf("suppressed=%d with the window open, want 1", got)
	}

	// Evict the window under capacity pressure (its count of 1 flushes to the
	// recorder), then deliver replayed duplicate #2 with no window to land in.
	for i := 0; i < 64; i++ {
		ch := fmt.Sprintf("pressure-%d", i)
		c.mu.Lock()
		c.openWindowLocked(ch, 1, "switch")
		c.mu.Unlock()
	}
	evicted := false
	for _, e := range rec.Events(0) {
		if e.Kind == trace.KindDedupClose && e.Subject == "replayed" && e.Detail == "evicted" {
			evicted = true
		}
	}
	if !evicted {
		t.Fatal("channel's dedup window was not capacity-evicted by the pressure windows")
	}
	rewindTracker()
	resubscribe()
	waitDuplicates(2)
	if got := c.Stats().DuplicatesSuppressed; got != 1 {
		t.Fatalf("suppressed=%d after post-eviction replay duplicate, want still 1 (no window to attribute it to)", got)
	}

	// Close flushes the surviving windows; the two views must agree exactly:
	// one suppressed duplicate, recorded once, in the evicted window's flush.
	c.Close()
	if got, want := rec.Sum(trace.KindDedupClose), int64(c.suppressed.Load()); got != want {
		t.Errorf("sum of KindDedupClose values = %d, want %d (suppressed counter)", got, want)
	}
	if opens, closes := rec.Count(trace.KindDedupOpen), rec.Count(trace.KindDedupClose); closes != opens {
		t.Errorf("dedup closes = %d, opens = %d; every window must close exactly once", closes, opens)
	}
	if st := c.Stats(); st.ReplayRequests != 2 || st.ReplayedFrames != 2 {
		t.Errorf("replay stats %+v, want 2 requests / 2 frames", st)
	}
}
