package dynamoth

import "testing"

func TestSeqTrackerContiguityAndGaps(t *testing.T) {
	tr := &seqTracker{}
	if _, _, ok := tr.cursor(); ok {
		t.Fatal("fresh tracker produced a cursor")
	}

	// Baseline at first-seen sequence: 5 is not a gap from 1.
	tr.observe(7, 5, 100)
	tr.observe(7, 6, 110)
	if gaps := tr.openGaps(); gaps != 0 {
		t.Fatalf("openGaps = %d after contiguous flow", gaps)
	}

	// 8 arrives before 7: one hole, then drained when 7 lands.
	tr.observe(7, 8, 130)
	if gaps := tr.openGaps(); gaps != 1 {
		t.Fatalf("openGaps = %d with seq 7 missing", gaps)
	}
	tr.observe(7, 7, 120)
	if gaps := tr.openGaps(); gaps != 0 {
		t.Fatalf("openGaps = %d after hole filled", gaps)
	}

	cur, sent, ok := tr.cursor()
	if !ok || cur.SinceStamp != 130 || sent[7] != 8 {
		t.Fatalf("cursor = %+v, sent = %v, ok = %v; want stamp 130, contig 8", cur, sent, ok)
	}
	if seq, ok := cur.SeqFor(7); !ok || seq != 8 {
		t.Fatalf("cursor claims seq %d for epoch 7, want 8", seq)
	}

	// Duplicates and below-baseline replay overlap are ignored.
	tr.observe(7, 3, 90)
	tr.observe(7, 8, 130)
	if _, sent, _ := tr.cursor(); sent[7] != 8 {
		t.Fatalf("duplicate moved contig to %d", sent[7])
	}
}

func TestSeqTrackerForgive(t *testing.T) {
	tr := &seqTracker{}
	tr.observe(9, 1, 10)
	tr.observe(9, 5, 50) // 2..4 missing
	if gaps := tr.openGaps(); gaps != 3 {
		t.Fatalf("openGaps = %d, want 3", gaps)
	}
	// Broker declares 2..4 unrecoverable: contig jumps, pending drains.
	tr.forgive(9, 4)
	if gaps := tr.openGaps(); gaps != 0 {
		t.Fatalf("openGaps = %d after forgive", gaps)
	}
	if _, sent, _ := tr.cursor(); sent[9] != 5 {
		t.Fatalf("contig = %d after forgive+drain, want 5", sent[9])
	}
	// Forgiving an epoch never seen creates its track at the verdict.
	tr.forgive(11, 30)
	if _, sent, _ := tr.cursor(); sent[11] != 30 {
		t.Fatalf("unknown-epoch forgive: contig = %d, want 30", sent[11])
	}
}

func TestSeqTrackerEpochEvictionAndOverflow(t *testing.T) {
	tr := &seqTracker{}
	for e := uint64(1); e <= maxTrackedEpochs+2; e++ {
		tr.observe(e, 1, int64(e))
	}
	cur, _, _ := tr.cursor()
	if len(cur.Seen) != maxTrackedEpochs {
		t.Fatalf("tracked %d epochs, bound is %d", len(cur.Seen), maxTrackedEpochs)
	}
	if _, ok := cur.SeqFor(1); ok {
		t.Fatal("oldest epoch not evicted")
	}

	// Pending-set overflow resets contiguity to the newest sequence instead
	// of growing without bound.
	over := &seqTracker{}
	over.observe(3, 1, 1)
	for q := uint64(3); q < uint64(3+maxPendingSeqs); q++ {
		over.observe(3, q, int64(q)) // all leave hole at 2
	}
	over.observe(3, uint64(3+maxPendingSeqs+10), 1)
	if _, sent, _ := over.cursor(); sent[3] != uint64(3+maxPendingSeqs+10) {
		t.Fatalf("overflow reset contig to %d", sent[3])
	}
	if gaps := over.openGaps(); gaps != 0 {
		t.Fatalf("openGaps = %d after overflow reset", gaps)
	}

	// Unstamped frames (no replay rings) only advance the stamp fallback.
	raw := &seqTracker{}
	raw.observe(0, 0, 77)
	cur, sent, ok := raw.cursor()
	if !ok || cur.SinceStamp != 77 || len(sent) != 0 {
		t.Fatalf("unstamped observe: cur %+v, sent %v, ok %v", cur, sent, ok)
	}
}
