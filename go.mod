module github.com/dynamoth/dynamoth

go 1.22
